"""Chaos drills: injected faults at the cluster sites, bit-identity held.

Each drill arms a :class:`~repro.testing.faults.FaultPlan` against one of
the cluster fault sites — worker crash/hang mid-batch, flaky routing
sends, failing migrations — streams through the coordinator, and asserts
the estimate still matches the serial reference bit-for-bit while the
relevant recovery counter moved.
"""

from __future__ import annotations

import pytest

from repro.cluster import ElasticCoordinator
from repro.core.config import ReptConfig
from repro.durability.retry import RetryPolicy
from repro.exceptions import ShardMigrationError
from repro.testing.faults import FaultPlan, FaultSpec, arm

from tests.cluster.conftest import assert_bit_identical, make_edges, serial_estimate

PROBE_NODES = (0, 5, 11, 33)


@pytest.fixture
def config():
    return ReptConfig(m=8, c=24, seed=55, track_local=True)


@pytest.fixture
def edges():
    return make_edges(1200, nodes=100, seed=12)


def run_with_plan(plan, config, edges, *, num_workers=2, batch=100, **kwargs):
    with arm(plan):
        with ElasticCoordinator(config, num_workers=num_workers, **kwargs) as coord:
            for start in range(0, len(edges), batch):
                coord.submit(edges[start : start + batch])
            return coord.estimate(), dict(coord.counters)


class TestWorkerFaults:
    def test_worker_crash_mid_batch(self, config, edges):
        reference = serial_estimate(edges, config)
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    site="cluster-worker-batch",
                    action="exit",
                    match={"worker": 0, "seq": 5},
                ),
            )
        )
        estimate, counters = run_with_plan(plan, config, edges)
        assert_bit_identical(estimate, reference, PROBE_NODES)
        assert counters["worker_deaths"] == 1
        assert counters["shard_migrations"] > 0

    def test_worker_error_reply_is_a_death(self, config, edges):
        # An exception inside the worker loop surfaces as an error reply;
        # the coordinator must treat the worker as lost, not trust it.
        reference = serial_estimate(edges, config)
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    site="cluster-worker-batch",
                    action="raise",
                    match={"worker": 1, "seq": 4},
                ),
            )
        )
        estimate, counters = run_with_plan(plan, config, edges)
        assert_bit_identical(estimate, reference, PROBE_NODES)
        assert counters["worker_deaths"] == 1

    def test_worker_hang_detected_by_timeout(self, config, edges):
        reference = serial_estimate(edges, config)
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    site="cluster-worker-batch",
                    action="hang",
                    match={"worker": 0, "seq": 3},
                    delay_seconds=20.0,
                ),
            )
        )
        estimate, counters = run_with_plan(
            plan, config, edges, worker_timeout=0.4
        )
        assert_bit_identical(estimate, reference, PROBE_NODES)
        assert counters["worker_deaths"] == 1

    def test_crash_during_snapshot_round(self, config, edges):
        reference = serial_estimate(edges, config)
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    site="cluster-worker-snapshot",
                    action="exit",
                    match={"worker": 1},
                ),
            )
        )
        estimate, counters = run_with_plan(
            plan, config, edges, snapshot_every=4
        )
        assert_bit_identical(estimate, reference, PROBE_NODES)
        assert counters["worker_deaths"] == 1


class TestCoordinatorFaults:
    def test_flaky_routing_send_is_retried(self, config, edges):
        reference = serial_estimate(edges, config)
        plan = FaultPlan(
            faults=(
                FaultSpec(site="cluster-route", action="io-error", times=2),
            )
        )
        estimate, counters = run_with_plan(
            plan,
            config,
            edges,
            retry=RetryPolicy(max_attempts=4, base_delay=0.01, seed=9),
        )
        assert_bit_identical(estimate, reference, PROBE_NODES)
        assert counters["routing_retries"] >= 2
        # retries succeeded, so no deaths were necessary
        assert counters["worker_deaths"] == 0

    def test_migration_target_failure_cascades_safely(self, config, edges):
        # The migration send itself keeps failing: the coordinator must
        # exhaust retries, declare the target dead, and re-home the shards
        # on whatever is left — here the inline host.
        reference = serial_estimate(edges, config)
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    site="cluster-worker-batch",
                    action="exit",
                    match={"worker": 0, "seq": 4},
                ),
                FaultSpec(
                    site="cluster-migrate",
                    action="io-error",
                    times=99,
                ),
            )
        )
        estimate, counters = run_with_plan(
            plan,
            config,
            edges,
            retry=RetryPolicy(max_attempts=2, base_delay=0.01, seed=9),
        )
        assert_bit_identical(estimate, reference, PROBE_NODES)
        assert counters["worker_deaths"] >= 1
        assert counters["migration_errors"] >= 1
        assert estimate.metadata["degraded"] == 1.0


class TestWalExhaustion:
    def test_torn_wal_surfaces_typed_error(self, config):
        # Force a restore point that predates the retained WAL suffix by
        # truncating behind the coordinator's back: migration must raise
        # ShardMigrationError, never silently drop batches.
        edges = make_edges(600, nodes=80, seed=3)
        with ElasticCoordinator(
            config, num_workers=2, snapshot_every=10_000, wal_capacity=10_000
        ) as coord:
            for start in range(0, len(edges), 100):
                coord.submit(edges[start : start + 100])
            coord.wal.truncate_through(3)
            coord.kill_worker(coord.worker_ids()[0])
            with pytest.raises(ShardMigrationError):
                # death surfaces on the next drain; with no restore point
                # covering the truncated prefix, migration must fail loudly
                coord.submit(edges[:100])
                coord.flush()
                coord.estimate()
            assert coord.counters["migration_errors"] >= 1
