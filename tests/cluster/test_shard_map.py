"""Tests for the versioned shard map and its deterministic rebalancing."""

from __future__ import annotations

import pytest

from repro.cluster import ShardMap
from repro.exceptions import MembershipError


class TestConstruction:
    def test_round_robin_initial_assignment(self):
        smap = ShardMap(5, [0, 1])
        assert smap.assignment() == {0: 0, 1: 1, 2: 0, 3: 1, 4: 0}
        assert smap.epoch == 1
        assert smap.workers == [0, 1]

    def test_unsorted_worker_ids_are_normalised(self):
        smap = ShardMap(4, [3, 1])
        assert smap.workers == [1, 3]
        assert smap.assignment() == {0: 1, 1: 3, 2: 1, 3: 3}

    def test_empty_pool_leaves_shards_unowned(self):
        smap = ShardMap(3, [])
        assert smap.assignment() == {0: None, 1: None, 2: None}
        assert smap.by_worker() == {}

    def test_rejects_bad_inputs(self):
        with pytest.raises(MembershipError):
            ShardMap(0, [0])
        with pytest.raises(MembershipError):
            ShardMap(3, [1, 1])


class TestQueries:
    def test_owner_and_shards_of(self):
        smap = ShardMap(4, [0, 1])
        assert smap.owner(2) == 0
        assert smap.shards_of(0) == [0, 2]
        assert smap.shards_of(1) == [1, 3]
        assert smap.shards_of(99) == []

    def test_unknown_shard_raises(self):
        smap = ShardMap(2, [0])
        with pytest.raises(MembershipError):
            smap.owner(5)

    def test_by_worker_view(self):
        smap = ShardMap(5, [0, 1])
        assert smap.by_worker() == {0: [0, 2, 4], 1: [1, 3]}


class TestJoin:
    def test_join_steals_from_most_loaded(self):
        smap = ShardMap(6, [0, 1])  # 0 -> {0,2,4}, 1 -> {1,3,5}
        moves = smap.add_worker(2)
        # Donors are the peak-loaded workers (ties -> smallest id), and the
        # donated shard is the donor's highest shard id.
        assert moves == {4: (0, 2), 5: (1, 2)}
        assert smap.by_worker() == {0: [0, 2], 1: [1, 3], 2: [4, 5]}
        assert smap.epoch == 2

    def test_join_into_empty_pool_claims_everything(self):
        smap = ShardMap(3, [])
        moves = smap.add_worker(7)
        assert moves == {0: (None, 7), 1: (None, 7), 2: (None, 7)}
        assert smap.by_worker() == {7: [0, 1, 2]}

    def test_join_is_minimal_movement(self):
        smap = ShardMap(4, [0, 1])
        before = smap.assignment()
        moves = smap.add_worker(2)
        # Only moved shards differ from the previous assignment.
        after = smap.assignment()
        changed = {s for s in range(4) if before[s] != after[s]}
        assert changed == set(moves)
        # Nothing moved between the two surviving workers.
        for shard, (donor, target) in moves.items():
            assert target == 2

    def test_join_balances_within_one(self):
        smap = ShardMap(9, [0, 1])
        smap.add_worker(2)
        loads = sorted(len(v) for v in smap.by_worker().values())
        assert loads[-1] - loads[0] <= 1

    def test_duplicate_join_rejected(self):
        smap = ShardMap(2, [0])
        with pytest.raises(MembershipError):
            smap.add_worker(0)

    def test_join_sequence_is_deterministic(self):
        runs = []
        for _ in range(2):
            smap = ShardMap(7, [0, 1, 2])
            moves = smap.add_worker(3)
            runs.append((moves, smap.assignment(), smap.epoch))
        assert runs[0] == runs[1]


class TestLeave:
    def test_leave_hands_orphans_to_least_loaded(self):
        smap = ShardMap(6, [0, 1, 2])  # 0->{0,3}, 1->{1,4}, 2->{2,5}
        moves = smap.remove_worker(1)
        # Orphans 1 and 4 level across survivors in shard-id order.
        assert moves == {1: 0, 4: 2}
        assert smap.by_worker() == {0: [0, 1, 3], 2: [2, 4, 5]}
        assert smap.epoch == 2

    def test_last_leave_orphans_everything(self):
        smap = ShardMap(3, [5])
        moves = smap.remove_worker(5)
        assert moves == {0: None, 1: None, 2: None}
        assert smap.assignment() == {0: None, 1: None, 2: None}
        assert smap.workers == []

    def test_unknown_leave_rejected(self):
        smap = ShardMap(2, [0])
        with pytest.raises(MembershipError):
            smap.remove_worker(9)

    def test_leave_only_moves_orphans(self):
        smap = ShardMap(8, [0, 1, 2])
        before = smap.assignment()
        moves = smap.remove_worker(2)
        after = smap.assignment()
        changed = {s for s in range(8) if before[s] != after[s]}
        assert changed == set(moves)


class TestChurn:
    def test_epoch_monotonic_under_churn(self):
        smap = ShardMap(5, [0])
        epochs = [smap.epoch]
        smap.add_worker(1)
        epochs.append(smap.epoch)
        smap.add_worker(2)
        epochs.append(smap.epoch)
        smap.remove_worker(0)
        epochs.append(smap.epoch)
        assert epochs == sorted(set(epochs))

    def test_every_shard_always_accounted_for(self):
        smap = ShardMap(10, [0, 1])
        smap.add_worker(2)
        smap.remove_worker(0)
        smap.add_worker(3)
        smap.remove_worker(1)
        assignment = smap.assignment()
        assert set(assignment) == set(range(10))
        owned = [s for s, w in assignment.items() if w is not None]
        assert sorted(owned) == list(range(10))
        # by_worker partitions the shard set exactly
        flat = sorted(s for shards in smap.by_worker().values() for s in shards)
        assert flat == list(range(10))
