"""Shared helpers for the elastic shard coordinator tests.

Coordinator tests spawn real worker processes, so streams are kept small
and pools narrow.  The serial reference for every bit-identity assertion
is :func:`repro.core.parallel.run_rept` with ``backend="serial"``.
"""

from __future__ import annotations

import random
from typing import List, Tuple

import pytest

from repro.core.config import ReptConfig
from repro.core.parallel import run_rept


def make_edges(n: int, nodes: int = 150, seed: int = 7) -> List[Tuple[int, int]]:
    """A deterministic multigraph stream with repeats and self-avoidance."""
    rng = random.Random(seed)
    edges = []
    while len(edges) < n:
        u, v = rng.randrange(nodes), rng.randrange(nodes)
        if u != v:
            edges.append((u, v))
    return edges


def serial_estimate(edges, config: ReptConfig):
    """The reference estimate the coordinator must match bit-for-bit."""
    return run_rept(edges, config, backend="serial")


def assert_bit_identical(estimate, reference, nodes=()):
    """Global count, stored edges, processed edges — and local counts."""
    assert estimate.global_count == reference.global_count
    assert estimate.edges_processed == reference.edges_processed
    assert estimate.edges_stored == reference.edges_stored
    for node in nodes:
        assert estimate.local_count(node) == reference.local_count(node), node


@pytest.fixture
def small_config() -> ReptConfig:
    return ReptConfig(m=8, c=24, seed=31, track_local=True)
