"""Unit tests for the elastic shard coordinator's happy and failure paths."""

from __future__ import annotations

import pytest

from repro.cluster import ElasticCoordinator
from repro.core.config import ReptConfig
from repro.core.state import GroupStateSet
from repro.exceptions import MembershipError

from tests.cluster.conftest import assert_bit_identical, make_edges, serial_estimate

PROBE_NODES = (0, 1, 2, 17, 42)


def feed(coordinator, edges, batch=100):
    for i in range(0, len(edges), batch):
        coordinator.submit(edges[i : i + batch])


class TestHappyPath:
    def test_matches_serial_reference(self, small_config):
        edges = make_edges(1200)
        reference = serial_estimate(edges, small_config)
        with ElasticCoordinator(small_config, num_workers=2) as coord:
            feed(coord, edges)
            estimate = coord.estimate()
        assert_bit_identical(estimate, reference, PROBE_NODES)
        assert estimate.metadata["worker_deaths"] == 0.0
        assert estimate.metadata["degraded"] == 0.0
        assert estimate.metadata["workers"] == 2.0

    def test_zero_workers_runs_inline(self, small_config):
        edges = make_edges(600)
        reference = serial_estimate(edges, small_config)
        with ElasticCoordinator(small_config, num_workers=0) as coord:
            feed(coord, edges)
            estimate = coord.estimate()
        assert_bit_identical(estimate, reference, PROBE_NODES)
        assert estimate.metadata["degraded"] == 1.0
        assert estimate.metadata["inline_shards"] == float(
            len(small_config.group_sizes())
        )

    def test_estimate_is_repeatable_and_resumable(self, small_config):
        edges = make_edges(900)
        with ElasticCoordinator(small_config, num_workers=2) as coord:
            feed(coord, edges[:600])
            first = coord.estimate()
            again = coord.estimate()
            assert first.global_count == again.global_count
            feed(coord, edges[600:])
            final = coord.estimate()
        reference = serial_estimate(edges, small_config)
        assert_bit_identical(final, reference, PROBE_NODES)


class TestFailureRecovery:
    def test_sigkill_mid_stream_is_bit_identical(self, small_config):
        edges = make_edges(1500)
        reference = serial_estimate(edges, small_config)
        with ElasticCoordinator(small_config, num_workers=2) as coord:
            feed(coord, edges[:700])
            victim = coord.worker_ids()[0]
            coord.kill_worker(victim)
            feed(coord, edges[700:])
            estimate = coord.estimate()
            assert estimate.metadata["worker_deaths"] == 1.0
            assert estimate.metadata["shard_migrations"] > 0
            assert victim not in coord.worker_ids()
        assert_bit_identical(estimate, reference, PROBE_NODES)

    def test_killing_every_worker_degrades_inline(self, small_config):
        edges = make_edges(1000)
        reference = serial_estimate(edges, small_config)
        with ElasticCoordinator(small_config, num_workers=2) as coord:
            feed(coord, edges[:400])
            for victim in coord.worker_ids():
                coord.kill_worker(victim)
            feed(coord, edges[400:])
            estimate = coord.estimate()
            assert coord.worker_ids() == []
            assert estimate.metadata["degraded"] == 1.0
            assert estimate.metadata["worker_deaths"] == 2.0
            # heal: a fresh worker takes the shards back off the inline host
            coord.add_worker()
            healed = coord.estimate()
            assert healed.metadata["degraded"] == 0.0
        assert_bit_identical(estimate, reference, PROBE_NODES)
        assert_bit_identical(healed, reference, PROBE_NODES)


class TestMembership:
    def test_join_mid_stream_is_bit_identical(self, small_config):
        edges = make_edges(1500)
        reference = serial_estimate(edges, small_config)
        with ElasticCoordinator(small_config, num_workers=1) as coord:
            feed(coord, edges[:800])
            epoch_before = coord.shard_map.epoch
            new_id = coord.add_worker()
            assert coord.shard_map.epoch > epoch_before
            assert new_id in coord.worker_ids()
            assert coord.shard_map.shards_of(new_id)
            feed(coord, edges[800:])
            estimate = coord.estimate()
        assert_bit_identical(estimate, reference, PROBE_NODES)
        assert estimate.metadata["worker_joins"] == 1.0
        assert estimate.metadata["shard_migrations"] > 0

    def test_graceful_remove_mid_stream(self, small_config):
        edges = make_edges(1200)
        reference = serial_estimate(edges, small_config)
        with ElasticCoordinator(small_config, num_workers=3) as coord:
            feed(coord, edges[:500])
            coord.remove_worker(coord.worker_ids()[-1])
            feed(coord, edges[500:])
            estimate = coord.estimate()
            assert len(coord.worker_ids()) == 2
        assert_bit_identical(estimate, reference, PROBE_NODES)
        assert estimate.metadata["worker_removals"] == 1.0
        # a graceful removal is not a death
        assert estimate.metadata["worker_deaths"] == 0.0

    def test_cannot_remove_last_worker(self, small_config):
        with ElasticCoordinator(small_config, num_workers=1) as coord:
            (only,) = coord.worker_ids()
            with pytest.raises(MembershipError, match="last live worker"):
                coord.remove_worker(only)
            assert coord.counters["membership_errors"] == 1

    def test_remove_unknown_worker(self, small_config):
        with ElasticCoordinator(small_config, num_workers=2) as coord:
            with pytest.raises(MembershipError):
                coord.remove_worker(999)


class TestPortableState:
    def test_round_trip_to_fresh_coordinator(self, small_config):
        edges = make_edges(1000)
        with ElasticCoordinator(small_config, num_workers=2) as coord:
            feed(coord, edges)
            want = coord.estimate()
            state = coord.portable_state()
        with ElasticCoordinator(small_config, num_workers=3) as fresh:
            fresh.restore_portable(state, edges_processed=len(edges))
            got = fresh.estimate()
        assert_bit_identical(got, want, PROBE_NODES)

    def test_state_is_serial_engine_compatible(self, small_config):
        edges = make_edges(1000)
        with ElasticCoordinator(small_config, num_workers=2) as coord:
            feed(coord, edges)
            want = coord.estimate()
            state = coord.portable_state()
        serial = GroupStateSet(small_config)
        serial.restore_portable(state)
        got = serial.estimate(len(edges))
        assert_bit_identical(got, want, PROBE_NODES)

    def test_restore_then_continue_streaming(self, small_config):
        edges = make_edges(1400)
        reference = serial_estimate(edges, small_config)
        with ElasticCoordinator(small_config, num_workers=2) as coord:
            feed(coord, edges[:700])
            state = coord.portable_state()
        with ElasticCoordinator(small_config, num_workers=2) as resumed:
            resumed.restore_portable(state, edges_processed=700)
            feed(resumed, edges[700:])
            estimate = resumed.estimate()
        assert_bit_identical(estimate, reference, PROBE_NODES)
