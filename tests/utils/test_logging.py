"""Tests for the logging helpers."""

import logging

from repro.utils.logging import enable_console_logging, get_logger


class TestLoggingHelpers:
    def test_get_logger_namespaces_under_package(self):
        logger = get_logger("graph")
        assert logger.name == "repro.graph"

    def test_get_logger_keeps_existing_prefix(self):
        logger = get_logger("repro.core")
        assert logger.name == "repro.core"

    def test_enable_console_logging_is_idempotent(self):
        first = enable_console_logging(logging.WARNING)
        handler_count = len(first.handlers)
        second = enable_console_logging(logging.WARNING)
        assert second is first
        assert len(second.handlers) == handler_count

    def test_library_does_not_configure_root_logger(self):
        enable_console_logging()
        assert not any(
            getattr(handler, "_repro_marker", False) for handler in logging.getLogger().handlers
        )
