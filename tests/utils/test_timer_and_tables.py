"""Tests for the timer, timing log and text-table helpers."""

import time

import pytest

from repro.utils.tables import format_series, format_table
from repro.utils.timer import Timer, TimingLog


class TestTimer:
    def test_context_manager_measures_elapsed(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.005

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_restart_overwrites_elapsed(self):
        timer = Timer()
        timer.start()
        first = timer.stop()
        timer.start()
        second = timer.stop()
        assert first >= 0 and second >= 0


class TestTimingLog:
    def test_add_and_mean(self):
        log = TimingLog()
        log.add("m", 1.0)
        log.add("m", 3.0)
        assert log.mean("m") == 2.0
        assert log.total("m") == 4.0

    def test_names_in_insertion_order(self):
        log = TimingLog()
        log.add("b", 1.0)
        log.add("a", 1.0)
        assert log.names() == ["b", "a"]


class TestFormatTable:
    def test_contains_headers_and_values(self):
        text = format_table(["name", "value"], [["x", 1], ["y", 2.5]])
        assert "name" in text and "value" in text
        assert "x" in text and "2.5" in text

    def test_title_is_prepended(self):
        text = format_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_large_and_small_floats_use_scientific(self):
        text = format_table(["v"], [[1e12], [1e-9]])
        assert "e+" in text or "E+" in text
        assert "e-" in text

    def test_zero_rendered_plainly(self):
        assert "0" in format_table(["v"], [[0.0]])


class TestFormatSeries:
    def test_aligns_series_with_axis(self):
        text = format_series("c", [1, 2], [("m1", [0.5, 0.25]), ("m2", [1.0, 0.75])])
        lines = text.splitlines()
        assert "c" in lines[0] and "m1" in lines[0] and "m2" in lines[0]
        assert len(lines) == 4  # header + separator + 2 rows
