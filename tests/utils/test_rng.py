"""Tests for the deterministic RNG helpers."""

import numpy as np
import pytest

from repro.utils.rng import RandomSource, as_random_source, derive_seed, spawn_rngs


class TestRandomSource:
    def test_same_seed_same_sequence(self):
        a = RandomSource(42)
        b = RandomSource(42)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = RandomSource(1)
        b = RandomSource(2)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_spawn_children_are_independent_and_deterministic(self):
        children_a = RandomSource(7).spawn(3)
        children_b = RandomSource(7).spawn(3)
        values_a = [child.random() for child in children_a]
        values_b = [child.random() for child in children_b]
        assert values_a == values_b
        assert len(set(values_a)) == 3

    def test_spawn_negative_count_raises(self):
        with pytest.raises(ValueError):
            RandomSource(0).spawn(-1)

    def test_spawn_zero_returns_empty(self):
        assert RandomSource(0).spawn(0) == []

    def test_accepts_existing_generator(self):
        generator = np.random.default_rng(5)
        source = RandomSource(generator)
        assert source.generator is generator

    def test_spawn_from_generator_backed_source(self):
        source = RandomSource(np.random.default_rng(5))
        children = source.spawn(2)
        assert len(children) == 2

    def test_integers_within_range(self):
        source = RandomSource(3)
        values = source.integers(0, 10, size=100)
        assert values.min() >= 0
        assert values.max() < 10

    def test_random_uint64_range(self):
        value = RandomSource(3).random_uint64()
        assert 0 <= value < 2**64

    def test_shuffle_is_permutation(self):
        source = RandomSource(11)
        data = list(range(20))
        shuffled = list(data)
        source.shuffle(shuffled)
        assert sorted(shuffled) == data


class TestHelpers:
    def test_as_random_source_passthrough(self):
        source = RandomSource(1)
        assert as_random_source(source) is source

    def test_as_random_source_from_int(self):
        assert isinstance(as_random_source(9), RandomSource)

    def test_spawn_rngs_count(self):
        assert len(spawn_rngs(5, 4)) == 4

    def test_derive_seed_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_derive_seed_varies_with_tokens(self):
        assert derive_seed(1, "a", 2) != derive_seed(1, "a", 3)
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_derive_seed_is_63_bit(self):
        value = derive_seed(123, "x")
        assert 0 <= value < 2**63
