"""Fault-injection tests for the service's supervised failure handling.

Armed :class:`~repro.testing.faults.FaultPlan` entries target the two
service fault sites:

* ``service-ingest`` fires at frame entry, *before* any engine mutation —
  so a faulted frame is dropped whole and the post-fault estimate must
  equal a reference run over exactly the delivered (non-faulted) frames;
* ``service-checkpoint`` fires in the checkpoint path — failures must be
  counted, survive, never damage earlier generations, and a later
  checkpoint plus recovery must succeed.
"""

import asyncio

import pytest

from repro.core.config import ReptConfig
from repro.core.state import GroupStateSet
from repro.exceptions import ServiceError
from repro.service import EstimationService, InProcessClient
from repro.testing.faults import FaultPlan, FaultSpec, arm

REPT = {"kind": "rept", "m": 8, "c": 16, "seed": 5}

FRAMES = [
    [[1, 2], [2, 3], [1, 3]],
    [[3, 4], [2, 4], [1, 4]],
    [[4, 5], [5, 6], [4, 6]],
    [[1, 5], [2, 6], [3, 6]],
]


def reference_global(frames):
    state = GroupStateSet(ReptConfig(m=8, c=16, seed=5))
    delivered = 0
    for frame in frames:
        delivered += state.process_edges([tuple(e) for e in frame])
    return state.estimate(delivered).global_count


class TestIngestFaults:
    def test_faulted_frame_drops_whole_session_restarts(self, tmp_path):
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    site="service-ingest",
                    action="raise",
                    match={"tenant": "t"},
                    skip=1,  # second frame faults
                    times=1,
                ),
            )
        )

        async def scenario():
            service = EstimationService(checkpoint_root=tmp_path / "ckpt")
            client = InProcessClient(service)
            await client.open("t", engine=REPT)
            for frame in FRAMES:
                await client.ingest("t", frame)
            await service.sessions["t"].queue.join()
            stats = (await client.stats("t"))["stats"]
            result = await client.query_global("t")
            return stats, result

        with arm(plan, tmp_path / "faults"):
            stats, result = asyncio.run(scenario())

        assert stats["ingest_errors"] == 1
        assert stats["dropped_frames"] == 1
        assert stats["restarts"] == 1
        assert stats["state"] == "running"
        assert stats["delivered"] == 9
        # No torn state: the estimate equals a run over the frames that
        # were actually delivered (frame 1 dropped whole, never half-applied).
        expected = reference_global([FRAMES[0], FRAMES[2], FRAMES[3]])
        assert result["global_count"] == expected

    def test_repeated_faults_degrade_to_failed_per_policy(self, tmp_path):
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    site="service-ingest",
                    action="raise",
                    match={"tenant": "t"},
                    times=10,  # every frame faults
                ),
            )
        )

        async def scenario():
            service = EstimationService(
                checkpoint_root=tmp_path / "ckpt", restart_limit=2
            )
            client = InProcessClient(service)
            await client.open("t", engine=REPT)
            for frame in FRAMES:
                await client.ingest("t", frame)
            await service.sessions["t"].queue.join()
            stats = (await client.stats("t"))["stats"]
            with pytest.raises(ServiceError, match="failed"):
                await client.ingest("t", FRAMES[0])
            # Queries still work over the delivered (empty) prefix.
            result = await client.query_global("t")
            return stats, result

        with arm(plan, tmp_path / "faults"):
            stats, result = asyncio.run(scenario())

        assert stats["state"] == "failed"
        assert stats["restarts"] == 2
        assert stats["ingest_errors"] == 3  # budget + the frame that tipped it
        assert result["edges_processed"] == 0

    def test_faults_are_tenant_scoped(self, tmp_path):
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    site="service-ingest",
                    action="raise",
                    match={"tenant": "victim"},
                    times=10,
                ),
            )
        )

        async def scenario():
            service = EstimationService()
            client = InProcessClient(service)
            await client.open("victim", engine=REPT)
            await client.open("bystander", engine=REPT)
            for frame in FRAMES[:2]:
                await client.ingest("victim", frame)
                await client.ingest("bystander", frame)
            for session in service.sessions.values():
                await session.queue.join()
            return (
                (await client.stats("victim"))["stats"],
                (await client.stats("bystander"))["stats"],
            )

        with arm(plan, tmp_path / "faults"):
            victim, bystander = asyncio.run(scenario())

        assert victim["delivered"] == 0
        assert victim["ingest_errors"] == 2
        assert bystander["delivered"] == 6
        assert bystander["ingest_errors"] == 0


class TestCheckpointFaults:
    def test_checkpoint_io_error_counted_and_survived(self, tmp_path):
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    site="service-checkpoint",
                    action="io-error",
                    match={"tenant": "t"},
                    times=1,
                ),
            )
        )

        async def scenario():
            service = EstimationService(checkpoint_root=tmp_path / "ckpt")
            client = InProcessClient(service)
            await client.open("t", engine=REPT)
            await client.ingest("t", FRAMES[0])
            await service.sessions["t"].queue.join()
            with pytest.raises(ServiceError) as excinfo:
                await client.checkpoint("t")
            assert excinfo.value.code == "checkpoint-failed"
            stats_mid = (await client.stats("t"))["stats"]
            # Ingestion continues and a later checkpoint succeeds.
            await client.ingest("t", FRAMES[1])
            await service.sessions["t"].queue.join()
            done = await client.checkpoint("t")
            return stats_mid, done

        with arm(plan, tmp_path / "faults"):
            stats_mid, done = asyncio.run(scenario())

        assert stats_mid["checkpoint_failures"] == 1
        assert stats_mid["state"] == "running"
        assert done["failures"] == 0
        assert done["checkpoints"]["t"]["stream_offset"] == 6

    def test_failed_checkpoint_never_damages_earlier_generations(self, tmp_path):
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    site="service-checkpoint",
                    action="io-error",
                    match={"tenant": "t"},
                    skip=1,  # first checkpoint succeeds, second faults
                    times=1,
                ),
            )
        )
        root = tmp_path / "ckpt"

        async def first_life():
            service = EstimationService(checkpoint_root=root)
            client = InProcessClient(service)
            await client.open("t", engine=REPT)
            await client.ingest("t", FRAMES[0])
            await service.sessions["t"].queue.join()
            await client.checkpoint("t")  # generation 0, offset 3
            await client.ingest("t", FRAMES[1])
            await service.sessions["t"].queue.join()
            with pytest.raises(ServiceError):
                await client.checkpoint("t")  # injected io-error

        async def second_life():
            service = EstimationService(checkpoint_root=root)
            recovered = service.recover_sessions()
            client = InProcessClient(service)
            result = await client.query_global("t")
            return recovered, result

        with arm(plan, tmp_path / "faults"):
            asyncio.run(first_life())
        recovered, result = asyncio.run(second_life())

        # Recovery lands on the intact generation 0 (offset 3).
        assert recovered == [("t", 3)]
        assert result["global_count"] == reference_global([FRAMES[0]])
        assert result["edges_processed"] == 3

    def test_periodic_checkpoint_fault_does_not_kill_ingest_loop(self, tmp_path):
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    site="service-checkpoint",
                    action="io-error",
                    match={"tenant": "t"},
                    times=100,
                ),
            )
        )

        async def scenario():
            service = EstimationService(
                checkpoint_root=tmp_path / "ckpt", checkpoint_every_frames=1
            )
            client = InProcessClient(service)
            await client.open("t", engine=REPT)
            for frame in FRAMES:
                await client.ingest("t", frame)
            await service.sessions["t"].queue.join()
            return (await client.stats("t"))["stats"]

        with arm(plan, tmp_path / "faults"):
            stats = asyncio.run(scenario())

        # Every periodic attempt failed, every frame still delivered.
        assert stats["checkpoint_failures"] == 4
        assert stats["ingest_errors"] == 0
        assert stats["delivered"] == 12
        assert stats["state"] == "running"
