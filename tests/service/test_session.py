"""Session-layer tests: engine specs, backpressure, consistency, durability.

Async behaviour is exercised through ``asyncio.run`` inside synchronous
test functions (no pytest-asyncio dependency).
"""

import asyncio

import pytest

from repro.baselines.exact import ExactStreamingCounter
from repro.core.config import ReptConfig
from repro.core.state import GroupStateSet
from repro.exceptions import ServiceError
from repro.service.session import (
    StreamSession,
    build_engine,
    validate_engine_spec,
)

REPT_SPEC = {"kind": "rept", "m": 8, "c": 16, "seed": 5}

EDGES = [[1, 2], [2, 3], [1, 3], [3, 4], [2, 4], [1, 4], [4, 5], [5, 6], [4, 6]]


class TestEngineSpecs:
    def test_rept_spec_round_trips(self):
        spec = validate_engine_spec(REPT_SPEC)
        engine = build_engine(spec)
        assert engine.kind == "rept"
        assert engine.spec == spec

    def test_rept_spec_requires_explicit_seed(self):
        with pytest.raises(ServiceError, match="seed"):
            validate_engine_spec({"kind": "rept", "m": 8, "c": 16})

    def test_unknown_kind_rejected(self):
        with pytest.raises(ServiceError, match="unknown engine kind"):
            validate_engine_spec({"kind": "quantum"})

    def test_non_dict_rejected(self):
        with pytest.raises(ServiceError, match="object"):
            validate_engine_spec("rept")

    def test_triest_needs_budget(self):
        with pytest.raises(ServiceError, match="budget"):
            validate_engine_spec({"kind": "triest"})

    def test_monitor_needs_window_and_rept(self):
        with pytest.raises(ServiceError, match="window_seconds"):
            validate_engine_spec({"kind": "monitor", "rept": REPT_SPEC})
        with pytest.raises(ServiceError, match="rept"):
            validate_engine_spec({"kind": "monitor", "window_seconds": 10.0})


class TestEngines:
    def test_rept_engine_matches_serial_state_set(self):
        engine = build_engine(validate_engine_spec(REPT_SPEC))
        engine.ingest_frame(EDGES[:5])
        engine.ingest_frame(EDGES[5:])

        reference = GroupStateSet(ReptConfig(m=8, c=16, seed=5))
        delivered = reference.process_edges([tuple(e) for e in EDGES])
        expected = reference.estimate(delivered)

        result = engine.query_global()
        assert result["global_count"] == expected.global_count
        assert result["edges_processed"] == len(EDGES)

    def test_exact_engine_counts_triangles(self):
        engine = build_engine(validate_engine_spec({"kind": "exact"}))
        engine.ingest_frame(EDGES)
        reference = ExactStreamingCounter()
        reference.process_edges([tuple(e) for e in EDGES])
        assert engine.query_global()["global_count"] == reference.estimate().global_count

    def test_triest_engine_restore_is_bit_identical(self):
        spec = validate_engine_spec({"kind": "triest", "budget": 5, "seed": 3})
        engine = build_engine(spec)
        engine.ingest_frame(EDGES[:5])
        payload = engine.state_payload()
        mid = engine.delivered

        twin = build_engine(spec)
        twin.restore(payload, mid)
        engine.ingest_frame(EDGES[5:])
        twin.ingest_frame(EDGES[5:])
        # Same reservoir RNG state restored => identical continuation.
        assert twin.query_global() == engine.query_global()

    def test_monitor_engine_rejects_untimestamped_frames(self):
        spec = validate_engine_spec(
            {"kind": "monitor", "window_seconds": 10.0, "rept": dict(REPT_SPEC)}
        )
        engine = build_engine(spec)
        with pytest.raises(ServiceError, match="u, v, t"):
            engine.ingest_frame([[1, 2]])

    def test_monitor_engine_windows_and_watermark(self):
        spec = validate_engine_spec(
            {"kind": "monitor", "window_seconds": 10.0, "rept": dict(REPT_SPEC)}
        )
        engine = build_engine(spec)
        engine.ingest_frame([[1, 2, 1.0], [2, 3, 2.0], [1, 3, 3.0], [7, 8, 12.0]])
        assert engine.max_event_time == 12.0
        engine.advance_watermark(25.0)
        windows = engine.query_windows(0)
        assert [w["index"] for w in windows] == [0, 1]
        assert engine.query_windows(1)[0]["index"] == 1

    def test_estimator_engines_have_no_windows(self):
        engine = build_engine(validate_engine_spec({"kind": "exact"}))
        with pytest.raises(ServiceError, match="windowed"):
            engine.query_windows(0)
        with pytest.raises(ServiceError, match="watermark"):
            engine.advance_watermark(1.0)


def _make_session(tmp_path=None, **kwargs):
    spec = validate_engine_spec(REPT_SPEC)
    return StreamSession(
        tenant="t",
        spec=spec,
        engine=build_engine(spec),
        checkpoint_dir=(tmp_path / "ckpt") if tmp_path is not None else None,
        **kwargs,
    )


class TestBackpressure:
    def test_block_policy_waits_for_queue_room(self):
        async def scenario():
            session = _make_session(queue_frames=1, backpressure="block")
            # Do NOT start the loop: the queue can never drain, so the
            # second offer must block until we give up on it.
            await session.offer(EDGES[:2])
            second = asyncio.ensure_future(session.offer(EDGES[2:4]))
            await asyncio.sleep(0.05)
            assert not second.done()
            # Free one slot; the blocked offer completes.
            session.queue.get_nowait()
            session.queue.task_done()
            outcome = await asyncio.wait_for(second, timeout=1)
            assert outcome["accepted"] is True

        asyncio.run(scenario())

    def test_shed_policy_drops_and_counts(self):
        async def scenario():
            session = _make_session(queue_frames=1, backpressure="shed")
            first = await session.offer(EDGES[:2])
            assert first["accepted"] is True
            second = await session.offer(EDGES[2:5])
            assert second == {"accepted": False, "shed": True, "queued": 1}
            assert session.metrics.shed_frames == 1
            assert session.metrics.shed_records == 3

        asyncio.run(scenario())

    def test_bad_policy_rejected(self):
        with pytest.raises(ServiceError, match="backpressure"):
            _make_session(backpressure="yolo")


class TestIngestLoop:
    def test_frames_deliver_in_order_and_match_reference(self):
        async def scenario():
            session = _make_session()
            session.start()
            for start in range(0, len(EDGES), 3):
                await session.offer(EDGES[start : start + 3])
            await session.queue.join()
            return session.engine.query_global(), session.metrics.ingested_records

        result, ingested = asyncio.run(scenario())
        reference = GroupStateSet(ReptConfig(m=8, c=16, seed=5))
        delivered = reference.process_edges([tuple(e) for e in EDGES])
        assert result["global_count"] == reference.estimate(delivered).global_count
        assert ingested == len(EDGES)

    def test_queries_observe_frame_aligned_prefixes(self):
        """A query between offers sees a whole number of frames applied."""

        async def scenario():
            session = _make_session()
            session.start()
            frames = [EDGES[start : start + 3] for start in range(0, len(EDGES), 3)]
            observed = []
            for frame in frames:
                await session.offer(frame)
                await asyncio.sleep(0)  # let the loop run (or not) a bit
                observed.append(session.engine.query_global()["edges_processed"])
            await session.queue.join()
            return observed

        observed = asyncio.run(scenario())
        assert all(count % 3 == 0 for count in observed)

    def test_bad_frame_counts_error_and_loop_survives(self):
        async def scenario():
            session = _make_session()
            session.start()
            await session.offer([[1]])  # malformed record
            await session.offer(EDGES[:3])
            await session.queue.join()
            return session

        session = asyncio.run(scenario())
        assert session.metrics.ingest_errors == 1
        assert session.metrics.dropped_frames == 1
        assert session.metrics.restarts == 1
        assert session.engine.delivered == 3
        assert session.state == "running"

    def test_restart_budget_exhaustion_fails_session(self):
        async def scenario():
            session = _make_session(restart_limit=1)
            session.start()
            await session.offer([[1]])
            await session.offer([[2]])
            await session.queue.join()
            # A failed session rejects new frames but still drains the queue.
            with pytest.raises(ServiceError, match="failed"):
                await session.offer(EDGES[:2])
            return session

        session = asyncio.run(scenario())
        assert session.state == "failed"
        assert session.metrics.ingest_errors == 2


class TestDurability:
    def test_checkpoint_and_recover_bit_identical(self, tmp_path):
        async def first_life():
            session = _make_session(tmp_path)
            session.start()
            await session.offer(EDGES[:6])
            await session.queue.join()
            session.checkpoint()
            return session.engine.query_global()

        async def second_life():
            session = _make_session(tmp_path)
            offset = session.recover()
            session.start()
            await session.offer(EDGES[6:])
            await session.queue.join()
            return offset, session.engine.query_global()

        before = asyncio.run(first_life())
        offset, after = asyncio.run(second_life())
        assert offset == 6
        reference = GroupStateSet(ReptConfig(m=8, c=16, seed=5))
        reference.process_edges([tuple(e) for e in EDGES[:6]])
        assert before["global_count"] == reference.estimate(6).global_count
        reference.process_edges([tuple(e) for e in EDGES[6:]])
        assert after["global_count"] == reference.estimate(len(EDGES)).global_count

    def test_recover_rejects_mismatched_engine_spec(self, tmp_path):
        async def first_life():
            session = _make_session(tmp_path)
            session.start()
            await session.offer(EDGES[:3])
            await session.queue.join()
            session.checkpoint()

        asyncio.run(first_life())
        other_spec = validate_engine_spec({"kind": "rept", "m": 4, "c": 8, "seed": 5})
        impostor = StreamSession(
            tenant="t",
            spec=other_spec,
            engine=build_engine(other_spec),
            checkpoint_dir=tmp_path / "ckpt",
        )

        async def second_life():
            with pytest.raises(ServiceError, match="engine"):
                impostor.recover()

        asyncio.run(second_life())

    def test_periodic_checkpoint_by_frames(self, tmp_path):
        async def scenario():
            session = _make_session(tmp_path, checkpoint_every_frames=2)
            session.start()
            for start in range(0, 8, 2):
                await session.offer(EDGES[start : start + 2])
            await session.queue.join()
            return session

        session = asyncio.run(scenario())
        assert session.metrics.checkpoints_written == 2
        assert session.checkpoints.generations() != []

    def test_drain_writes_final_checkpoint_and_closes(self, tmp_path):
        async def scenario():
            session = _make_session(tmp_path)
            session.start()
            await session.offer(EDGES[:4])
            await session.drain()
            return session

        session = asyncio.run(scenario())
        assert session.state == "closed"
        assert session.metrics.checkpoints_written == 1
        report = session.checkpoints.recover()
        assert report.checkpoint.stream_offset == 4

    def test_audit_log_written_and_synced(self, tmp_path):
        from repro.streaming.readers import read_jsonl_records

        async def scenario():
            spec = validate_engine_spec(REPT_SPEC)
            session = StreamSession(
                tenant="t",
                spec=spec,
                engine=build_engine(spec),
                checkpoint_dir=tmp_path / "ckpt",
                audit_log_path=tmp_path / "audit.jsonl",
            )
            session.start()
            await session.offer(EDGES[:4])
            await session.drain()

        asyncio.run(scenario())
        records, log = read_jsonl_records(tmp_path / "audit.jsonl")
        assert [list(r) for r in records] == EDGES[:4]
        assert log.skipped == 0
