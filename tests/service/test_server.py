"""Service-level tests: dispatch, tenancy, transports, recovery, timers."""

import asyncio

import pytest

from repro.core.config import ReptConfig
from repro.core.state import GroupStateSet
from repro.exceptions import ServiceError
from repro.service import (
    EstimationService,
    InProcessClient,
    TcpServiceClient,
)

REPT = {"kind": "rept", "m": 8, "c": 16, "seed": 5}
MONITOR = {"kind": "monitor", "window_seconds": 10.0, "rept": dict(REPT)}

EDGES = [[1, 2], [2, 3], [1, 3], [3, 4], [2, 4], [1, 4], [4, 5], [5, 6], [4, 6]]


def reference_global(edges):
    state = GroupStateSet(ReptConfig(m=8, c=16, seed=5))
    delivered = state.process_edges([tuple(e) for e in edges])
    return state.estimate(delivered).global_count


class TestDispatch:
    def test_hello_reports_protocol_and_sessions(self):
        async def scenario():
            client = InProcessClient(EstimationService())
            response = await client.call("hello")
            assert response["server"]
            assert response["protocol"] == 1
            assert response["sessions"] == 0

        asyncio.run(scenario())

    def test_unknown_op_is_answered_not_raised(self):
        async def scenario():
            service = EstimationService()
            response = await service.handle_request({"op": "explode"})
            assert response["ok"] is False
            assert response["code"] == "bad-request"

        asyncio.run(scenario())

    def test_unknown_tenant_code(self):
        async def scenario():
            client = InProcessClient(EstimationService())
            with pytest.raises(ServiceError) as excinfo:
                await client.query_global("ghost")
            assert excinfo.value.code == "unknown-tenant"

        asyncio.run(scenario())

    def test_internal_errors_become_error_responses(self):
        async def scenario():
            service = EstimationService()
            client = InProcessClient(service)
            await client.open("t", engine=REPT)
            # advance_watermark with a non-numeric time is a protocol error;
            # with a fine time on a non-monitor engine it's a service error.
            response = await service.handle_request(
                {"op": "advance_watermark", "tenant": "t", "time": "soon"}
            )
            assert response["code"] == "bad-request"
            with pytest.raises(ServiceError, match="watermark"):
                await client.advance_watermark("t", 1.0)

        asyncio.run(scenario())


class TestTenancy:
    def test_open_reopen_and_engine_mismatch(self):
        async def scenario():
            client = InProcessClient(EstimationService())
            created = await client.open("t", engine=REPT)
            assert created["created"] is True
            again = await client.open("t")  # re-attach, no spec
            assert again["created"] is False
            same = await client.open("t", engine=dict(REPT))
            assert same["created"] is False
            with pytest.raises(ServiceError) as excinfo:
                await client.open("t", engine={"kind": "exact"})
            assert excinfo.value.code == "engine-mismatch"

        asyncio.run(scenario())

    def test_open_requires_engine_for_new_tenant(self):
        async def scenario():
            client = InProcessClient(EstimationService())
            with pytest.raises(ServiceError, match="engine"):
                await client.open("t")

        asyncio.run(scenario())

    def test_tenant_names_cannot_traverse_paths(self):
        async def scenario():
            client = InProcessClient(EstimationService())
            for name in ("../evil", "a/b", "a\\b"):
                with pytest.raises(ServiceError, match="path"):
                    await client.open(name, engine=REPT)

        asyncio.run(scenario())

    def test_tenants_are_isolated_but_share_interner(self):
        async def scenario():
            service = EstimationService()
            client = InProcessClient(service)
            await client.open("a", engine=REPT)
            await client.open("b", engine=REPT)
            await client.ingest("a", EDGES)
            await client.ingest("b", EDGES[:3])
            for session in service.sessions.values():
                await session.queue.join()
            qa = await client.query_global("a")
            qb = await client.query_global("b")
            assert qa["edges_processed"] == len(EDGES)
            assert qb["edges_processed"] == 3
            sessions = set()
            for session in service.sessions.values():
                sessions.add(id(session.engine.state.interner))
            assert sessions == {id(service.interner)}

        asyncio.run(scenario())

    def test_stats_rollup_aggregates_tenants(self):
        async def scenario():
            service = EstimationService()
            client = InProcessClient(service)
            await client.open("a", engine=REPT)
            await client.open("b", engine={"kind": "exact"})
            await client.ingest("a", EDGES[:4])
            await client.ingest("b", EDGES[:2])
            for session in service.sessions.values():
                await session.queue.join()
            rollup = await client.stats()
            assert rollup["aggregate"]["sessions"] == 2
            assert rollup["aggregate"]["ingested_records"] == 6
            assert rollup["sessions"]["b"]["engine"] == "exact"
            single = await client.stats("a")
            assert single["stats"]["delivered"] == 4

        asyncio.run(scenario())


class TestRecovery:
    def test_kill_and_recover_is_bit_identical(self, tmp_path):
        """The acceptance drill: recover from checkpoints in a new process
        (modelled as a new service instance) and verify queries equal an
        uninterrupted run over the same delivered prefix."""
        root = tmp_path / "ckpt"

        async def first_life():
            service = EstimationService(checkpoint_root=root)
            client = InProcessClient(service)
            await client.open("t", engine=REPT)
            await client.ingest("t", EDGES[:6])
            await service.sessions["t"].queue.join()
            await client.checkpoint("t")
            # No drain, no shutdown: the "kill" is simply abandoning the
            # instance after the checkpoint hit disk.

        async def second_life():
            service = EstimationService(checkpoint_root=root)
            recovered = service.recover_sessions()
            assert recovered == [("t", 6)]
            client = InProcessClient(service)
            reopen = await client.open("t")
            assert reopen["delivered"] == 6
            mid = await client.query_global("t")
            await client.ingest("t", EDGES[6:])
            await service.sessions["t"].queue.join()
            return mid, await client.query_global("t")

        asyncio.run(first_life())
        mid, final = asyncio.run(second_life())
        assert mid["global_count"] == reference_global(EDGES[:6])
        assert final["global_count"] == reference_global(EDGES)

    def test_recovered_monitor_resumes_windows(self, tmp_path):
        root = tmp_path / "ckpt"
        records = [[1, 2, 1.0], [2, 3, 2.0], [1, 3, 3.0]]

        async def first_life():
            service = EstimationService(checkpoint_root=root)
            client = InProcessClient(service)
            await client.open("m", engine=MONITOR)
            await client.ingest("m", records, timestamped=True)
            await service.sessions["m"].queue.join()
            await client.checkpoint("m")

        async def second_life():
            service = EstimationService(checkpoint_root=root)
            service.recover_sessions()
            client = InProcessClient(service)
            await client.advance_watermark("m", 25.0)
            return await client.query_windows("m")

        asyncio.run(first_life())
        windows = asyncio.run(second_life())["windows"]
        assert [w["records"] for w in windows] == [3]

    def test_recover_skips_tenants_without_checkpoints(self, tmp_path):
        root = tmp_path / "ckpt"
        (root / "empty-tenant").mkdir(parents=True)

        async def scenario():
            service = EstimationService(checkpoint_root=root)
            assert service.recover_sessions() == []
            assert service.sessions == {}

        asyncio.run(scenario())


class TestTimers:
    def test_watermark_timer_ticks_monitors_idempotently(self):
        async def scenario():
            service = EstimationService(watermark_interval_seconds=0.02)
            client = InProcessClient(service)
            await client.open("m", engine=MONITOR)
            await client.ingest(
                "m", [[1, 2, 1.0], [2, 3, 2.0], [7, 8, 25.0]], timestamped=True
            )
            service.start_timers()
            # Several timer periods re-issue the same watermark value; the
            # monitor's idempotent seal path must emit window 0 exactly once.
            await asyncio.sleep(0.1)
            windows = (await client.query_windows("m"))["windows"]
            await service.shutdown()
            return windows

        windows = asyncio.run(scenario())
        assert [w["index"] for w in windows] == [0, 1]
        assert windows[0]["records"] == 2

    def test_checkpoint_timer_writes_generations(self, tmp_path):
        async def scenario():
            service = EstimationService(
                checkpoint_root=tmp_path / "ckpt",
                checkpoint_interval_seconds=0.02,
            )
            client = InProcessClient(service)
            await client.open("t", engine=REPT)
            await client.ingest("t", EDGES)
            service.start_timers()
            await asyncio.sleep(0.08)
            await service.shutdown()
            return service.sessions["t"].metrics.checkpoints_written

        assert asyncio.run(scenario()) >= 2


class TestTcpTransport:
    def test_tcp_round_trip_and_graceful_shutdown(self, tmp_path):
        async def scenario():
            service = EstimationService(checkpoint_root=tmp_path / "ckpt")
            host, port = await service.serve_tcp()
            client = await TcpServiceClient.connect(host, port)
            hello = await client.call("hello")
            assert hello["protocol"] == 1
            await client.open("t", engine=REPT)
            await client.ingest("t", EDGES)
            result = None
            # Poll until the frame drains (ingest ack is enqueue, not apply).
            for _ in range(100):
                result = await client.query_global("t")
                if result["edges_processed"] == len(EDGES):
                    break
                await asyncio.sleep(0.01)
            drained = await client.shutdown()
            await client.close()
            await service.wait_closed()
            return result, drained, service

        result, drained, service = asyncio.run(scenario())
        assert result["global_count"] == reference_global(EDGES)
        assert drained["drained"] == ["t"]
        assert service.sessions["t"].state == "closed"
        # Drain wrote the final checkpoint.
        assert service.sessions["t"].metrics.checkpoints_written >= 1

    def test_tcp_pipelines_concurrent_clients(self):
        async def scenario():
            service = EstimationService()
            host, port = await service.serve_tcp()
            control = await TcpServiceClient.connect(host, port)
            await control.open("a", engine=REPT)
            await control.open("b", engine={"kind": "exact"})

            async def hammer(tenant, frames):
                client = await TcpServiceClient.connect(host, port)
                for frame in frames:
                    await client.ingest(tenant, frame)
                await client.close()

            await asyncio.gather(
                hammer("a", [EDGES[:3], EDGES[3:6], EDGES[6:]]),
                hammer("b", [EDGES[:5], EDGES[5:]]),
            )
            for session in service.sessions.values():
                await session.queue.join()
            qa = await control.query_global("a")
            qb = await control.query_global("b")
            await control.shutdown()
            await control.close()
            await service.wait_closed()
            return qa, qb

        qa, qb = asyncio.run(scenario())
        assert qa["edges_processed"] == len(EDGES)
        assert qb["edges_processed"] == len(EDGES)

    def test_malformed_tcp_line_gets_error_response(self):
        async def scenario():
            service = EstimationService()
            host, port = await service.serve_tcp()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"this is not json\n")
            await writer.drain()
            line = await reader.readline()
            writer.close()
            await writer.wait_closed()
            await service.shutdown()
            await service.wait_closed()
            return line

        import json

        response = json.loads(asyncio.run(scenario()))
        assert response["ok"] is False
        assert response["code"] == "bad-request"
