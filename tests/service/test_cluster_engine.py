"""Tests for the ``rept-elastic`` service engine (cluster-hosted REPT)."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import ServiceError
from repro.service.session import build_engine, validate_engine_spec

ELASTIC_SPEC = {
    "kind": "rept-elastic",
    "m": 8,
    "c": 24,
    "seed": 19,
    "workers": 2,
    "track_local": True,
}
REPT_SPEC = {k: v for k, v in ELASTIC_SPEC.items() if k != "workers"}
REPT_SPEC["kind"] = "rept"


def frames(n_frames=8, per_frame=60, seed=4):
    rng = random.Random(seed)
    return [
        [[rng.randrange(90), rng.randrange(90)] for _ in range(per_frame)]
        for _ in range(n_frames)
    ]


class TestSpecValidation:
    def test_defaults_workers(self):
        spec = validate_engine_spec(
            {"kind": "rept-elastic", "m": 4, "c": 8, "seed": 1}
        )
        assert spec["workers"] == 2

    def test_requires_rept_params(self):
        with pytest.raises(ServiceError):
            validate_engine_spec({"kind": "rept-elastic", "workers": 2})

    def test_rejects_bad_workers(self):
        for workers in ("two", -1, 1.5):
            with pytest.raises(ServiceError):
                validate_engine_spec(
                    {"kind": "rept-elastic", "m": 4, "c": 8, "seed": 1,
                     "workers": workers}
                )

    def test_spec_json_round_trip(self):
        import json

        spec = validate_engine_spec(ELASTIC_SPEC)
        assert json.loads(json.dumps(spec)) == spec


class TestElasticEngine:
    def test_matches_plain_rept_engine(self):
        elastic = build_engine(validate_engine_spec(ELASTIC_SPEC))
        plain = build_engine(validate_engine_spec(REPT_SPEC))
        try:
            for frame in frames():
                assert elastic.ingest_frame(frame) == plain.ingest_frame(frame)
            eg, pg = elastic.query_global(), plain.query_global()
            assert eg["global_count"] == pg["global_count"]
            assert eg["edges_processed"] == pg["edges_processed"]
            assert eg["edges_stored"] == pg["edges_stored"]
            nodes = [0, 1, 2, 50]
            assert (
                elastic.query_local(nodes)["counts"]
                == plain.query_local(nodes)["counts"]
            )
        finally:
            elastic.close()

    def test_query_global_reports_cluster_health(self):
        engine = build_engine(validate_engine_spec(ELASTIC_SPEC))
        try:
            engine.ingest_frame(frames(1)[0])
            answer = engine.query_global()
            assert answer["workers"] == 2
            assert answer["worker_deaths"] == 0
            assert answer["shard_migrations"] == 0
        finally:
            engine.close()

    def test_survives_worker_kill_mid_session(self):
        elastic = build_engine(validate_engine_spec(ELASTIC_SPEC))
        plain = build_engine(validate_engine_spec(REPT_SPEC))
        try:
            batch = frames(10)
            for frame in batch[:5]:
                elastic.ingest_frame(frame)
                plain.ingest_frame(frame)
            victim = elastic.coordinator.worker_ids()[0]
            elastic.coordinator.kill_worker(victim)
            for frame in batch[5:]:
                elastic.ingest_frame(frame)
                plain.ingest_frame(frame)
            eg, pg = elastic.query_global(), plain.query_global()
            assert eg["global_count"] == pg["global_count"]
            assert eg["worker_deaths"] == 1
            assert eg["shard_migrations"] > 0
        finally:
            elastic.close()


class TestCheckpointCompatibility:
    def test_restore_onto_fresh_elastic_engine(self):
        engine = build_engine(validate_engine_spec(ELASTIC_SPEC))
        try:
            for frame in frames():
                engine.ingest_frame(frame)
            payload = engine.state_payload()
            want = engine.query_global()
            delivered = engine.delivered
        finally:
            engine.close()
        fresh = build_engine(validate_engine_spec(ELASTIC_SPEC))
        try:
            fresh.restore(payload, delivered)
            assert fresh.delivered == delivered
            assert fresh.query_global()["global_count"] == want["global_count"]
        finally:
            fresh.close()

    def test_checkpoints_interchange_with_plain_rept(self):
        # An elastic checkpoint restores onto a plain engine and vice
        # versa: sessions can move between deployment modes.
        elastic = build_engine(validate_engine_spec(ELASTIC_SPEC))
        try:
            for frame in frames():
                elastic.ingest_frame(frame)
            payload = elastic.state_payload()
            want = elastic.query_global()
            delivered = elastic.delivered
        finally:
            elastic.close()

        plain = build_engine(validate_engine_spec(REPT_SPEC))
        plain.restore(payload, delivered)
        assert plain.query_global()["global_count"] == want["global_count"]

        back = build_engine(validate_engine_spec(ELASTIC_SPEC))
        try:
            back.restore(plain.state_payload(), plain.delivered)
            assert back.query_global()["global_count"] == want["global_count"]
        finally:
            back.close()

    def test_close_is_idempotent(self):
        engine = build_engine(validate_engine_spec(ELASTIC_SPEC))
        engine.ingest_frame(frames(1)[0])
        engine.close()
        engine.close()
