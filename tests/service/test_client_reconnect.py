"""Regression tests: TcpServiceClient reconnect on a dropped connection.

The server here is a deliberately hostile NDJSON endpoint: it dispatches
into a real :class:`EstimationService`, but can be scripted to slam the
socket shut *before replying* to chosen operations.  The client must
redial under its retry policy, transparently re-send pure reads, and
refuse to re-send ingest — the one op where a blind re-send could
double-count edges.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.durability.retry import RetryPolicy
from repro.exceptions import ServiceError
from repro.service import EstimationService, TcpServiceClient
from repro.service.client import IDEMPOTENT_OPS
from repro.service.protocol import decode_line, encode_line

REPT = {"kind": "rept", "m": 8, "c": 16, "seed": 5}
FRAME = [[1, 2], [2, 3], [1, 3], [3, 4], [2, 4], [1, 4]]

#: Fast retry policy so drop drills don't sleep for real.
FAST_RETRY = RetryPolicy(max_attempts=4, base_delay=0.005, max_delay=0.02, seed=1)


class DroppingServer:
    """NDJSON endpoint that can kill the socket before replying."""

    def __init__(self) -> None:
        self.service = EstimationService()
        self.connections = 0
        self.seen_ops: list = []
        self.drop_next: set = set()  # ops to drop (one-shot per op)
        self._server = None

    async def start(self):
        self._server = await asyncio.start_server(self._handle, "127.0.0.1", 0)
        return self._server.sockets[0].getsockname()[:2]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(self, reader, writer) -> None:
        self.connections += 1
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                request = decode_line(line)
                self.seen_ops.append(request["op"])
                if request["op"] in self.drop_next:
                    # drop BEFORE dispatch: the request was never applied
                    self.drop_next.discard(request["op"])
                    return
                response = await self.service.handle_request(request)
                writer.write(encode_line(response))
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


async def drained_global(client, tenant, expected_edges):
    for _ in range(200):
        result = await client.query_global(tenant)
        if result["edges_processed"] == expected_edges:
            return result
        await asyncio.sleep(0.005)
    raise AssertionError("frames never drained")


class TestIdempotentResend:
    def test_dropped_query_is_resent_transparently(self):
        async def scenario():
            server = DroppingServer()
            host, port = await server.start()
            client = await TcpServiceClient.connect(host, port, retry=FAST_RETRY)
            await client.open("t", engine=REPT)
            await client.ingest("t", FRAME)
            await drained_global(client, "t", len(FRAME))
            server.drop_next.add("query_global")
            # the drop is invisible to the caller
            result = await client.query_global("t")
            assert result["edges_processed"] == len(FRAME)
            assert client.reconnects >= 1
            assert server.connections >= 2
            # the query really was sent twice: once dropped, once answered
            assert server.seen_ops.count("query_global") >= 2
            await client.close()
            await server.stop()

        asyncio.run(scenario())

    def test_ingest_ops_are_not_idempotent(self):
        assert "ingest" not in IDEMPOTENT_OPS
        assert "open" not in IDEMPOTENT_OPS
        assert "query_global" in IDEMPOTENT_OPS
        assert "query_local" in IDEMPOTENT_OPS


class TestIngestNeverResent:
    def test_dropped_ingest_raises_but_client_recovers(self):
        async def scenario():
            server = DroppingServer()
            host, port = await server.start()
            client = await TcpServiceClient.connect(host, port, retry=FAST_RETRY)
            await client.open("t", engine=REPT)
            await client.ingest("t", FRAME)
            await drained_global(client, "t", len(FRAME))

            server.drop_next.add("ingest")
            with pytest.raises(ServiceError) as excinfo:
                await client.ingest("t", FRAME)
            assert excinfo.value.code == "connection-dropped"
            # exactly two ingests reached the wire: the applied one and
            # the dropped one — no silent third from an auto-resend
            assert server.seen_ops.count("ingest") == 2

            # the client reconnected underneath: the next calls just work
            result = await client.query_global("t")
            assert result["edges_processed"] == len(FRAME)
            # the caller owns reconciliation: an explicit re-send applies
            await client.ingest("t", FRAME)
            await drained_global(client, "t", 2 * len(FRAME))
            await client.close()
            await server.stop()

        asyncio.run(scenario())


class TestReconnectExhaustion:
    def test_server_gone_raises_after_backoff(self):
        async def scenario():
            server = DroppingServer()
            host, port = await server.start()
            client = await TcpServiceClient.connect(host, port, retry=FAST_RETRY)
            await client.open("t", engine=REPT)
            server.drop_next.add("query_global")
            await server.stop()  # nothing is listening any more
            with pytest.raises(ServiceError) as excinfo:
                await client.query_global("t")
            assert excinfo.value.code == "connection-dropped"
            await client.close()

        asyncio.run(scenario())

    def test_closed_client_stays_closed(self):
        async def scenario():
            server = DroppingServer()
            host, port = await server.start()
            client = await TcpServiceClient.connect(host, port, retry=FAST_RETRY)
            await client.close()
            with pytest.raises(ServiceError, match="not connected"):
                await client.call("hello")
            await server.stop()

        asyncio.run(scenario())
