"""Wire-protocol unit tests: framing, validation, response builders."""

import pytest

from repro.exceptions import ProtocolError
from repro.service.protocol import (
    OPERATIONS,
    PROTOCOL_VERSION,
    decode_line,
    encode_line,
    error_response,
    ok_response,
    validate_request,
)


class TestFraming:
    def test_encode_decode_round_trip(self):
        message = {"v": PROTOCOL_VERSION, "op": "ingest", "edges": [[1, 2], ["a", "b"]]}
        line = encode_line(message)
        assert line.endswith(b"\n")
        assert b"\n" not in line[:-1]
        assert decode_line(line) == message

    def test_decode_rejects_non_json(self):
        with pytest.raises(ProtocolError):
            decode_line(b"{not json\n")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            decode_line(b"[1, 2, 3]\n")

    def test_decode_rejects_undecodable_bytes(self):
        with pytest.raises(ProtocolError):
            decode_line(b"\xff\xfe\n")


class TestValidation:
    def test_every_listed_op_validates(self):
        for op in OPERATIONS:
            assert validate_request({"v": PROTOCOL_VERSION, "op": op}) == op

    def test_version_defaults_to_current(self):
        assert validate_request({"op": "hello"}) == "hello"

    def test_version_mismatch_rejected(self):
        with pytest.raises(ProtocolError, match="version"):
            validate_request({"v": PROTOCOL_VERSION + 1, "op": "hello"})

    def test_missing_op_rejected(self):
        with pytest.raises(ProtocolError, match="op"):
            validate_request({"v": PROTOCOL_VERSION})

    def test_unknown_op_rejected(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            validate_request({"op": "explode"})

    def test_bad_id_type_rejected(self):
        with pytest.raises(ProtocolError, match="id"):
            validate_request({"op": "hello", "id": [1]})


class TestResponses:
    def test_ok_echoes_id(self):
        response = ok_response({"op": "hello", "id": 9}, server="x")
        assert response == {"v": PROTOCOL_VERSION, "ok": True, "id": 9, "server": "x"}

    def test_ok_without_id(self):
        assert "id" not in ok_response({"op": "hello"})

    def test_error_carries_code_and_message(self):
        response = error_response({"op": "ingest", "id": "q1"}, "unknown-tenant", "nope")
        assert response["ok"] is False
        assert response["code"] == "unknown-tenant"
        assert response["id"] == "q1"

    def test_error_with_unknown_code_degrades_to_internal(self):
        assert error_response(None, "made-up", "x")["code"] == "internal"

    def test_error_for_undecodable_request_has_no_id(self):
        assert "id" not in error_response(None, "bad-request", "x")
