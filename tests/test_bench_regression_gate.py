"""Tests for the CI throughput-regression gate.

The gate script (``benchmarks/check_bench_regression.py``) is standalone
(no package imports) so CI can run it without ``PYTHONPATH``; these tests
load it by path and drive simulated baseline/fresh payloads through it —
the acceptance criterion is that a ≥20% simulated batch-throughput
regression fails the gate while parity (and pure hardware drift, thanks to
per-edge calibration) passes.
"""

from __future__ import annotations

import importlib.util
import io
import json
from pathlib import Path

import pytest

GATE_PATH = Path(__file__).resolve().parents[1] / "benchmarks" / "check_bench_regression.py"

spec = importlib.util.spec_from_file_location("check_bench_regression", GATE_PATH)
gate = importlib.util.module_from_spec(spec)
spec.loader.exec_module(gate)


def _payload(cells):
    return {"benchmark": "ingest-throughput", "cells": cells}


def _cell(m, c, hash_kind, num_records, per_edge_eps, batch_eps, kernel="python"):
    return {
        "m": m,
        "c": c,
        "hash": hash_kind,
        "kernel": kernel,
        "num_records": num_records,
        "per_edge_eps": per_edge_eps,
        "batch_eps": batch_eps,
        "speedup": round(batch_eps / per_edge_eps, 3),
    }


BASELINE = [
    _cell(16, 32, "tabulation", 250_000, 40_000, 120_000),
    _cell(16, 32, "splitmix", 250_000, 60_000, 130_000),
    _cell(16, 16, "tabulation", 50_000, 90_000, 320_000),
]

#: A kernel-keyed baseline: each shape carries a python cell and a native
#: twin whose batch path is faster (the cc closure loop).
KERNEL_BASELINE = BASELINE + [
    _cell(16, 32, "tabulation", 250_000, 150_000, 360_000, kernel="cc"),
    _cell(16, 32, "splitmix", 250_000, 170_000, 390_000, kernel="cc"),
]


def _index(cells):
    return {
        (
            cell["m"],
            cell["c"],
            cell["hash"],
            cell.get("kernel", "python"),
            round(cell["num_records"] / max(x["num_records"] for x in cells), 3),
        ): cell
        for cell in cells
    }


def _scale(cells, per_edge=1.0, batch=1.0, records=1.0, kernel=None):
    """Rescale cells; ``kernel`` restricts the scaling to one kernel's cells."""
    return [
        _cell(
            cell["m"],
            cell["c"],
            cell["hash"],
            int(cell["num_records"] * records),
            cell["per_edge_eps"]
            * (per_edge if kernel in (None, cell["kernel"]) else 1.0),
            cell["batch_eps"]
            * (batch if kernel in (None, cell["kernel"]) else 1.0),
            kernel=cell["kernel"],
        )
        for cell in cells
    ]


def _run(baseline, fresh, **kwargs):
    out = io.StringIO()
    code = gate.check_regression(_index(baseline), _index(fresh), out=out, **kwargs)
    return code, out.getvalue()


class TestGateLogic:
    def test_parity_passes(self):
        code, text = _run(BASELINE, _scale(BASELINE), tolerance=0.20)
        assert code == 0
        assert "PASS" in text

    def test_simulated_25pct_batch_regression_fails(self):
        code, text = _run(BASELINE, _scale(BASELINE, batch=0.75), tolerance=0.20)
        assert code == 1
        assert "REGRESSED" in text

    def test_regression_in_one_cell_is_enough(self):
        fresh = _scale(BASELINE)
        fresh[1] = _cell(16, 32, "splitmix", 250_000, 60_000, 130_000 * 0.7)
        code, text = _run(BASELINE, fresh, tolerance=0.20)
        assert code == 1
        assert text.count("REGRESSED") == 1

    def test_within_tolerance_regression_passes(self):
        code, _ = _run(BASELINE, _scale(BASELINE, batch=0.85), tolerance=0.20)
        assert code == 0

    def test_tolerance_is_configurable(self):
        code, _ = _run(BASELINE, _scale(BASELINE, batch=0.85), tolerance=0.10)
        assert code == 1

    def test_uniform_hardware_slowdown_passes_with_calibration(self):
        # A slower runner shifts both paths equally; calibration absorbs it.
        fresh = _scale(BASELINE, per_edge=0.6, batch=0.6)
        code, text = _run(BASELINE, fresh, tolerance=0.20)
        assert code == 0
        assert "calibration=0.600" in text

    def test_batch_only_regression_not_masked_by_calibration(self):
        # Per-edge at parity, batch down 30%: a genuine pipeline regression.
        fresh = _scale(BASELINE, per_edge=1.0, batch=0.70)
        code, _ = _run(BASELINE, fresh, tolerance=0.20)
        assert code == 1

    def test_no_calibrate_gates_absolute_throughput(self):
        fresh = _scale(BASELINE, per_edge=0.6, batch=0.6)
        code, _ = _run(BASELINE, fresh, tolerance=0.20, calibrate=False)
        assert code == 1

    def test_reduced_ci_stream_still_matches_by_fraction(self):
        # CI runs a 60k stream vs the committed 250k: fractions line up.
        fresh = _scale(BASELINE, records=60_000 / 250_000)
        code, text = _run(BASELINE, fresh, tolerance=0.20)
        assert code == 0
        assert "3 matched cells" in text

    def test_unmatched_cells_is_an_input_error(self):
        fresh = [_cell(99, 99, "splitmix", 250_000, 60_000, 130_000)]
        code, text = _run(BASELINE, fresh, tolerance=0.20)
        assert code == 2
        assert "no cells match" in text

    def test_absurd_calibration_factor_aborts(self):
        fresh = _scale(BASELINE, per_edge=0.05, batch=0.05)
        code, text = _run(BASELINE, fresh, tolerance=0.20)
        assert code == 2
        assert "calibration factor" in text

    def test_speedup_metric_is_machine_independent(self):
        fresh = _scale(BASELINE, per_edge=0.5, batch=0.5)
        code, _ = _run(BASELINE, fresh, tolerance=0.20, metric="speedup")
        assert code == 0
        # Batch-only loss shows up as a speedup regression too.
        code, _ = _run(
            BASELINE, _scale(BASELINE, batch=0.7), tolerance=0.20, metric="speedup"
        )
        assert code == 1


class TestKernelKeyedCells:
    def test_kernel_cells_match_independently(self):
        code, text = _run(KERNEL_BASELINE, _scale(KERNEL_BASELINE), tolerance=0.20)
        assert code == 0
        assert "5 matched cells" in text
        assert "kernel=cc" in text
        assert "kernel=python" in text

    def test_simulated_native_kernel_regression_fails(self):
        """A 30% native-batch loss fails even when python cells improved —
        the native floor is keyed on the native cells, not the best cell."""
        fresh = _scale(KERNEL_BASELINE, batch=1.1, kernel="python")
        fresh = _scale(fresh, batch=0.70 / 1.0, kernel="cc")
        code, text = _run(KERNEL_BASELINE, fresh, tolerance=0.20)
        assert code == 1
        assert text.count("REGRESSED") == 2
        assert "kernel=cc" in text

    def test_python_kernel_regression_not_masked_by_native_cells(self):
        fresh = _scale(KERNEL_BASELINE, batch=0.70, kernel="python")
        code, text = _run(KERNEL_BASELINE, fresh, tolerance=0.20)
        assert code == 1
        for line in text.splitlines():
            if "REGRESSED" in line:
                assert "kernel=python" in line

    def test_calibration_uses_python_cells_only(self):
        """Hardware drift is measured on the python per-edge reference; a
        native per-edge slowdown must not rescale the python floors."""
        # Same machine, but the native per-edge path lost 50%: the factor
        # stays 1.0 (python cells at parity) and the native batch loss is
        # judged unrescaled.
        fresh = _scale(KERNEL_BASELINE, per_edge=0.5, batch=0.7, kernel="cc")
        code, text = _run(KERNEL_BASELINE, fresh, tolerance=0.20)
        assert "calibration=1.000" in text
        assert code == 1

    def test_uniform_slowdown_calibrates_across_kernels(self):
        fresh = _scale(KERNEL_BASELINE, per_edge=0.6, batch=0.6)
        code, text = _run(KERNEL_BASELINE, fresh, tolerance=0.20)
        assert code == 0
        assert "calibration=0.600" in text

    def test_pre_kernel_baseline_matches_python_cells(self):
        """Baselines written before the kernel dimension default to python
        and keep gating a kernel-keyed fresh run's python cells."""
        legacy = [
            {k: v for k, v in cell.items() if k != "kernel"} for cell in BASELINE
        ]
        code, text = _run(legacy, _scale(KERNEL_BASELINE), tolerance=0.20)
        assert code == 0
        assert "3 matched cells" in text
        code, _ = _run(
            legacy,
            _scale(KERNEL_BASELINE, batch=0.7, kernel="python"),
            tolerance=0.20,
        )
        assert code == 1


class TestCommandLine:
    def _write(self, tmp_path, name, cells):
        path = tmp_path / name
        path.write_text(json.dumps(_payload(cells)))
        return path

    def test_main_pass_and_fail(self, tmp_path):
        base = self._write(tmp_path, "base.json", BASELINE)
        same = self._write(tmp_path, "same.json", _scale(BASELINE))
        bad = self._write(tmp_path, "bad.json", _scale(BASELINE, batch=0.75))
        assert gate.main(["--baseline", str(base), "--fresh", str(same)]) == 0
        assert gate.main(["--baseline", str(base), "--fresh", str(bad)]) == 1

    def test_tolerance_env_override(self, tmp_path, monkeypatch):
        base = self._write(tmp_path, "base.json", BASELINE)
        soft = self._write(tmp_path, "soft.json", _scale(BASELINE, batch=0.75))
        monkeypatch.setenv("REPRO_BENCH_REGRESSION_TOLERANCE", "0.30")
        assert gate.main(["--baseline", str(base), "--fresh", str(soft)]) == 0

    def test_calibrate_env_override(self, tmp_path, monkeypatch):
        base = self._write(tmp_path, "base.json", BASELINE)
        slow = self._write(tmp_path, "slow.json", _scale(BASELINE, per_edge=0.6, batch=0.6))
        monkeypatch.setenv("REPRO_BENCH_REGRESSION_CALIBRATE", "0")
        assert gate.main(["--baseline", str(base), "--fresh", str(slow)]) == 1

    def test_missing_file_is_an_input_error(self, tmp_path):
        base = self._write(tmp_path, "base.json", BASELINE)
        with pytest.raises(SystemExit):
            gate.main(["--baseline", str(base), "--fresh", str(tmp_path / "nope.json")])

    def test_bad_tolerance_rejected(self, tmp_path):
        base = self._write(tmp_path, "base.json", BASELINE)
        with pytest.raises(SystemExit):
            gate.main(
                ["--baseline", str(base), "--fresh", str(base), "--tolerance", "1.5"]
            )


def _service_report(aggregate_eps, calibration_eps, shed_frames=0):
    return {
        "benchmark": "service-loadgen",
        "aggregate_eps": aggregate_eps,
        "calibration_eps": calibration_eps,
        "service_to_raw_ratio": round(aggregate_eps / calibration_eps, 4),
        "shed_frames": shed_frames,
        "query": {"queries": 40, "p50_ms": 0.5, "p95_ms": 1.2, "p99_ms": 2.0},
    }


SERVICE_BASELINE = _service_report(80_000.0, 160_000.0)


def _run_service(baseline, fresh, **kwargs):
    out = io.StringIO()
    code = gate.check_service_regression(baseline, fresh, out=out, **kwargs)
    return code, out.getvalue()


class TestServiceGate:
    def test_parity_passes(self):
        code, text = _run_service(
            SERVICE_BASELINE, _service_report(80_000.0, 160_000.0), tolerance=0.20
        )
        assert code == 0
        assert "PASS" in text

    def test_simulated_30pct_regression_fails(self):
        code, text = _run_service(
            SERVICE_BASELINE, _service_report(56_000.0, 160_000.0), tolerance=0.20
        )
        assert code == 1
        assert "REGRESSED" in text

    def test_within_tolerance_regression_passes(self):
        code, _ = _run_service(
            SERVICE_BASELINE, _service_report(68_000.0, 160_000.0), tolerance=0.20
        )
        assert code == 0

    def test_uniform_hardware_slowdown_passes_with_calibration(self):
        # A slower runner halves raw estimator ingest and service delivery
        # alike; the calibration factor absorbs it.
        code, text = _run_service(
            SERVICE_BASELINE, _service_report(40_000.0, 80_000.0), tolerance=0.20
        )
        assert code == 0
        assert "calibration=0.500" in text

    def test_service_only_regression_not_masked_by_calibration(self):
        # Raw ingest at parity, service delivery down 30%: a genuine
        # regression in the service stack.
        code, _ = _run_service(
            SERVICE_BASELINE, _service_report(56_000.0, 160_000.0), tolerance=0.20
        )
        assert code == 1

    def test_no_calibrate_gates_absolute_throughput(self):
        fresh = _service_report(40_000.0, 80_000.0)
        code, _ = _run_service(
            SERVICE_BASELINE, fresh, tolerance=0.20, calibrate=False
        )
        assert code == 1

    def test_absurd_calibration_factor_aborts(self):
        fresh = _service_report(4_000.0, 8_000.0)
        code, text = _run_service(SERVICE_BASELINE, fresh, tolerance=0.20)
        assert code == 2
        assert "calibration factor" in text

    def test_missing_aggregate_eps_is_an_input_error(self):
        code, text = _run_service(SERVICE_BASELINE, {"query": {}}, tolerance=0.20)
        assert code == 2
        assert "aggregate_eps" in text

    def test_shed_frames_reported(self):
        _, text = _run_service(
            SERVICE_BASELINE,
            _service_report(80_000.0, 160_000.0, shed_frames=3),
            tolerance=0.20,
        )
        assert "shed 3 frame(s)" in text


class TestServiceCommandLine:
    def _write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return path

    def test_main_autodetects_service_payloads(self, tmp_path):
        base = self._write(tmp_path, "base.json", SERVICE_BASELINE)
        same = self._write(
            tmp_path, "same.json", _service_report(80_000.0, 160_000.0)
        )
        bad = self._write(
            tmp_path, "bad.json", _service_report(56_000.0, 160_000.0)
        )
        assert gate.main(["--baseline", str(base), "--fresh", str(same)]) == 0
        assert gate.main(["--baseline", str(base), "--fresh", str(bad)]) == 1

    def test_explicit_kind_flag(self, tmp_path):
        base = self._write(tmp_path, "base.json", SERVICE_BASELINE)
        same = self._write(
            tmp_path, "same.json", _service_report(80_000.0, 160_000.0)
        )
        command = ["--baseline", str(base), "--fresh", str(same)]
        assert gate.main(command + ["--kind", "service"]) == 0

    def test_mixed_payload_kinds_is_an_input_error(self, tmp_path):
        ingest = self._write(tmp_path, "ingest.json", _payload(BASELINE))
        service = self._write(tmp_path, "service.json", SERVICE_BASELINE)
        assert gate.main(["--baseline", str(ingest), "--fresh", str(service)]) == 2

    def test_undetectable_payload_is_an_input_error(self, tmp_path):
        base = self._write(tmp_path, "base.json", SERVICE_BASELINE)
        mystery = self._write(tmp_path, "mystery.json", {"what": "is this"})
        with pytest.raises(SystemExit, match="cannot detect"):
            gate.main(["--baseline", str(base), "--fresh", str(mystery)])
