"""Shared fixtures for the test suite.

Fixtures provide small, deterministic streams with known exact triangle
counts so estimator tests can assert against ground truth cheaply, plus a
session-cached medium stream for statistical tests.
"""

from __future__ import annotations

import pytest

from repro.generators.planted import planted_clique_stream, planted_triangles_stream
from repro.generators.random_graphs import barabasi_albert_stream
from repro.graph.statistics import compute_statistics
from repro.streaming.edge_stream import EdgeStream


@pytest.fixture
def triangle_stream() -> EdgeStream:
    """A single triangle: edges (0,1), (1,2), (0,2)."""
    return EdgeStream([(0, 1), (1, 2), (0, 2)], name="one-triangle")


@pytest.fixture
def clique_stream() -> EdgeStream:
    """A 12-clique: C(12, 3) = 220 triangles."""
    return planted_clique_stream(12)


@pytest.fixture
def book_stream() -> EdgeStream:
    """Six triangles all sharing edge (0, 1), which arrives first.

    τ = 6 and, because the shared edge arrives first, η = C(6, 2) = 15.
    """
    return planted_triangles_stream(6, shared_edge=True)


@pytest.fixture
def disjoint_triangles_stream() -> EdgeStream:
    """Eight node-disjoint triangles: τ = 8, η = 0."""
    return planted_triangles_stream(8, shared_edge=False)


@pytest.fixture(scope="session")
def medium_stream() -> EdgeStream:
    """A deterministic ~5800-edge BA graph used by statistical tests."""
    return barabasi_albert_stream(1500, 4, triad_closure=0.4, seed=99, name="medium")


@pytest.fixture(scope="session")
def medium_stats(medium_stream):
    """Exact statistics of :func:`medium_stream` (computed once per session)."""
    return compute_statistics(medium_stream.edges(), name="medium")
