"""Tests for the Bernoulli edge sampler."""

import pytest

from repro.exceptions import ConfigurationError
from repro.sampling.edge_sampling import BernoulliEdgeSampler


class TestBernoulliEdgeSampler:
    def test_invalid_probability(self):
        with pytest.raises(ConfigurationError):
            BernoulliEdgeSampler(0.0)
        with pytest.raises(ConfigurationError):
            BernoulliEdgeSampler(1.5)

    def test_probability_one_keeps_everything(self):
        sampler = BernoulliEdgeSampler(1.0, seed=1)
        assert all(sampler.offer() for _ in range(100))
        assert sampler.empirical_rate == 1.0

    def test_empirical_rate_near_probability(self):
        sampler = BernoulliEdgeSampler(0.3, seed=2)
        for _ in range(5000):
            sampler.offer()
        assert 0.25 < sampler.empirical_rate < 0.35

    def test_deterministic_for_seed(self):
        a = BernoulliEdgeSampler(0.5, seed=3)
        b = BernoulliEdgeSampler(0.5, seed=3)
        assert [a.offer() for _ in range(50)] == [b.offer() for _ in range(50)]

    def test_counts(self):
        sampler = BernoulliEdgeSampler(0.5, seed=4)
        kept = sum(sampler.offer() for _ in range(100))
        assert sampler.num_offered == 100
        assert sampler.num_kept == kept

    def test_empirical_rate_before_offers(self):
        assert BernoulliEdgeSampler(0.5).empirical_rate == 0.0
