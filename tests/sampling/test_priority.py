"""Tests for the priority (order) sampler used by GPS."""

import pytest

from repro.exceptions import ConfigurationError
from repro.sampling.priority import PrioritySampler


class TestPrioritySampler:
    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            PrioritySampler(0)

    def test_capacity_respected(self):
        sampler = PrioritySampler(5, seed=1)
        for i in range(50):
            sampler.offer(("edge", i), weight=1.0)
        assert len(sampler) == 5

    def test_below_capacity_everything_kept(self):
        sampler = PrioritySampler(10, seed=1)
        for i in range(5):
            assert sampler.offer(i, weight=1.0) is None
        assert len(sampler) == 5
        assert all(sampler.inclusion_probability(i) == 1.0 for i in range(5))

    def test_threshold_grows_after_overflow(self):
        sampler = PrioritySampler(3, seed=2)
        for i in range(30):
            sampler.offer(i, weight=1.0)
        assert sampler.threshold > 0

    def test_inclusion_probability_bounds(self):
        sampler = PrioritySampler(4, seed=3)
        for i in range(40):
            sampler.offer(i, weight=1.0 + (i % 3))
        for item in sampler.items():
            probability = sampler.inclusion_probability(item)
            assert 0 < probability <= 1.0

    def test_absent_item_probability_zero(self):
        sampler = PrioritySampler(2, seed=1)
        assert sampler.inclusion_probability("missing") == 0.0

    def test_higher_weight_items_kept_more_often(self):
        kept_heavy = 0
        kept_light = 0
        for trial in range(300):
            sampler = PrioritySampler(5, seed=trial)
            sampler.offer("heavy", weight=50.0)
            for i in range(40):
                sampler.offer(("light", i), weight=1.0)
            if "heavy" in sampler:
                kept_heavy += 1
            kept_light += sum(1 for item in sampler.items() if item != "heavy")
        assert kept_heavy > 250  # heavy item should almost always survive

    def test_nonpositive_weight_rejected(self):
        sampler = PrioritySampler(2, seed=1)
        with pytest.raises(ValueError):
            sampler.offer("x", weight=0.0)

    def test_reoffer_updates_weight_without_duplication(self):
        sampler = PrioritySampler(3, seed=1)
        sampler.offer("a", weight=1.0)
        sampler.offer("a", weight=5.0)
        assert len(sampler) == 1
        assert sampler.weight_of("a") == 5.0

    def test_weight_of_missing_item_is_none(self):
        assert PrioritySampler(2, seed=1).weight_of("nope") is None
