"""Tests for the edge reservoir (Algorithm R)."""

import collections

import pytest

from repro.exceptions import ConfigurationError
from repro.sampling.reservoir import EdgeReservoir


class TestEdgeReservoir:
    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            EdgeReservoir(0)

    def test_fills_up_then_caps(self):
        reservoir = EdgeReservoir(5, seed=1)
        for i in range(20):
            reservoir.offer((i, i + 1))
        assert len(reservoir) == 5
        assert reservoir.is_full

    def test_first_k_always_kept(self):
        reservoir = EdgeReservoir(10, seed=1)
        results = [reservoir.offer((i, i + 1)) for i in range(10)]
        assert all(result.inserted for result in results)
        assert all(result.evicted is None for result in results)

    def test_eviction_reported(self):
        reservoir = EdgeReservoir(2, seed=3)
        reservoir.offer((0, 1))
        reservoir.offer((1, 2))
        evictions = 0
        for i in range(2, 50):
            result = reservoir.offer((i, i + 1))
            if result.inserted:
                assert result.evicted is not None
                evictions += 1
        assert evictions > 0

    def test_contains_and_edges(self):
        reservoir = EdgeReservoir(3, seed=1)
        reservoir.offer((1, 2))
        assert (1, 2) in reservoir
        assert reservoir.edges() == [(1, 2)]

    def test_uniformity_of_sample(self):
        """Each of the first 20 items should be retained ~k/n of the time."""
        n, k, trials = 20, 5, 2000
        counts = collections.Counter()
        for trial in range(trials):
            reservoir = EdgeReservoir(k, seed=trial)
            for i in range(n):
                reservoir.offer((i, i + 1))
            for edge in reservoir.edges():
                counts[edge[0]] += 1
        expected = trials * k / n
        for i in range(n):
            assert 0.7 * expected < counts[i] < 1.3 * expected

    def test_deterministic_for_seed(self):
        def run(seed):
            reservoir = EdgeReservoir(4, seed=seed)
            for i in range(100):
                reservoir.offer((i, i + 1))
            return sorted(reservoir.edges())

        assert run(9) == run(9)
