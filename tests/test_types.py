"""Tests for the shared primitive types."""

import pytest

from repro.types import Edge, TimestampedEdge, canonical_edge, normalize_edges


class TestCanonicalEdge:
    def test_orders_comparable_endpoints(self):
        assert canonical_edge(2, 1) == (1, 2)
        assert canonical_edge("b", "a") == ("a", "b")

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            canonical_edge(3, 3)

    def test_mixed_types_are_symmetric(self):
        assert canonical_edge(5, "x") == canonical_edge("x", 5)
        assert canonical_edge(5, "5") == canonical_edge("5", 5)


class TestEdge:
    def test_equality_and_hash_are_orientation_free(self):
        assert Edge(1, 2) == Edge(2, 1)
        assert hash(Edge(1, 2)) == hash(Edge(2, 1))
        assert len({Edge(1, 2), Edge(2, 1)}) == 1

    def test_as_tuple_and_iter(self):
        edge = Edge(4, 3)
        assert edge.as_tuple() == (3, 4)
        assert list(edge) == [3, 4]

    def test_other_endpoint(self):
        edge = Edge(1, 2)
        assert edge.other(1) == 2
        assert edge.other(2) == 1
        with pytest.raises(ValueError):
            edge.other(9)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Edge(7, 7)


class TestTimestampedEdge:
    def test_valid(self):
        record = TimestampedEdge(Edge(2, 1), timestamp=3)
        assert record.u == 1 and record.v == 2
        assert record.timestamp == 3

    def test_timestamp_must_be_positive(self):
        with pytest.raises(ValueError):
            TimestampedEdge(Edge(1, 2), timestamp=0)


class TestNormalizeEdges:
    def test_yields_edge_objects(self):
        edges = list(normalize_edges([(2, 1), (3, 4)]))
        assert edges == [Edge(1, 2), Edge(3, 4)]

    def test_self_loop_raises(self):
        with pytest.raises(ValueError):
            list(normalize_edges([(1, 1)]))
