"""Tests for the planted-structure generators (known exact counts)."""

import math

import pytest

from repro.generators.planted import planted_clique_stream, planted_triangles_stream
from repro.graph.eta import compute_eta
from repro.graph.triangles import count_triangles, count_triangles_per_node


class TestPlantedClique:
    @pytest.mark.parametrize("n", [3, 5, 10, 20])
    def test_triangle_count(self, n):
        stream = planted_clique_stream(n)
        assert count_triangles(stream.to_graph()) == math.comb(n, 3)

    def test_noise_edges_add_no_triangles(self):
        stream = planted_clique_stream(8, noise_edges=20, seed=1)
        assert count_triangles(stream.to_graph()) == math.comb(8, 3)
        assert stream.to_graph().num_edges == math.comb(8, 2) + 20

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            planted_clique_stream(1)

    def test_local_counts_uniform_over_clique(self):
        n = 7
        stream = planted_clique_stream(n)
        counts = count_triangles_per_node(stream.to_graph())
        for node in range(n):
            assert counts[node] == math.comb(n - 1, 2)


class TestPlantedTriangles:
    def test_disjoint_counts(self):
        stream = planted_triangles_stream(9, shared_edge=False)
        assert count_triangles(stream.to_graph()) == 9
        assert compute_eta(stream.edges()) == 0

    def test_book_counts(self):
        k = 8
        stream = planted_triangles_stream(k, shared_edge=True)
        assert count_triangles(stream.to_graph()) == k
        assert compute_eta(stream.edges()) == math.comb(k, 2)

    def test_zero_triangles(self):
        stream = planted_triangles_stream(0)
        assert len(stream) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            planted_triangles_stream(-1)

    def test_names(self):
        assert "book" in planted_triangles_stream(2, shared_edge=True).name
        assert "disjoint" in planted_triangles_stream(2, shared_edge=False).name
