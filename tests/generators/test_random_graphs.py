"""Tests for the random-graph stream generators."""

import pytest

from repro.generators.random_graphs import (
    barabasi_albert_stream,
    chung_lu_stream,
    erdos_renyi_stream,
    powerlaw_cluster_stream,
    powerlaw_weights,
)
from repro.graph.triangles import count_triangles


class TestErdosRenyi:
    def test_edge_count_and_distinctness(self):
        stream = erdos_renyi_stream(100, 300, seed=1)
        assert len(stream) == 300
        assert stream.num_distinct_edges == 300

    def test_deterministic_for_seed(self):
        a = erdos_renyi_stream(50, 100, seed=7).edges()
        b = erdos_renyi_stream(50, 100, seed=7).edges()
        assert a == b

    def test_too_many_edges_rejected(self):
        with pytest.raises(ValueError):
            erdos_renyi_stream(5, 11, seed=1)

    def test_too_few_nodes_rejected(self):
        with pytest.raises(ValueError):
            erdos_renyi_stream(1, 0, seed=1)

    def test_no_self_loops(self):
        stream = erdos_renyi_stream(30, 100, seed=2)
        assert all(u != v for u, v in stream)


class TestBarabasiAlbert:
    def test_node_and_edge_counts(self):
        stream = barabasi_albert_stream(200, 3, seed=1)
        graph = stream.to_graph()
        assert graph.num_nodes == 200
        # seed clique C(4,2)=6 edges + ~3 per subsequent node
        assert graph.num_edges >= 3 * (200 - 4)

    def test_deterministic_for_seed(self):
        a = barabasi_albert_stream(100, 2, seed=5).edges()
        b = barabasi_albert_stream(100, 2, seed=5).edges()
        assert a == b

    def test_triad_closure_increases_triangles(self):
        low = barabasi_albert_stream(300, 3, triad_closure=0.0, seed=3)
        high = barabasi_albert_stream(300, 3, triad_closure=0.8, seed=3)
        assert count_triangles(high.to_graph()) > count_triangles(low.to_graph())

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            barabasi_albert_stream(5, 0, seed=1)
        with pytest.raises(ValueError):
            barabasi_albert_stream(3, 3, seed=1)


class TestChungLu:
    def test_requested_edge_count(self):
        weights = powerlaw_weights(200, exponent=2.5)
        stream = chung_lu_stream(weights, 500, seed=1)
        assert len(stream) == 500
        assert stream.num_distinct_edges == 500

    def test_invalid_weights(self):
        with pytest.raises(ValueError):
            chung_lu_stream([1.0], 1, seed=1)
        with pytest.raises(ValueError):
            chung_lu_stream([1.0, -1.0], 1, seed=1)
        with pytest.raises(ValueError):
            chung_lu_stream([0.0, 0.0], 1, seed=1)

    def test_heavy_tail_concentrates_on_hubs(self):
        weights = powerlaw_weights(300, exponent=1.8)
        stream = chung_lu_stream(weights, 1500, seed=2)
        graph = stream.to_graph()
        degrees = sorted((graph.degree(node) for node in graph.nodes()), reverse=True)
        # The top node should be far above the mean degree.
        mean_degree = sum(degrees) / len(degrees)
        assert degrees[0] > 5 * mean_degree


class TestPowerlawHelpers:
    def test_powerlaw_weights_monotone_decreasing(self):
        weights = powerlaw_weights(10, exponent=2.0)
        assert all(weights[i] >= weights[i + 1] for i in range(9))

    def test_powerlaw_weights_invalid_exponent(self):
        with pytest.raises(ValueError):
            powerlaw_weights(10, exponent=1.0)

    def test_powerlaw_cluster_stream_has_triangles(self):
        stream = powerlaw_cluster_stream(300, 2500, exponent=2.0, seed=4)
        assert count_triangles(stream.to_graph()) > 0

    def test_named_stream(self):
        stream = powerlaw_cluster_stream(100, 300, seed=1, name="custom")
        assert stream.name == "custom"
