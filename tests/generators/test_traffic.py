"""Tests for the synthetic packet-trace generator."""

from repro.generators.traffic import TrafficTraceSpec, synthetic_packet_trace
from repro.graph.triangles import count_triangles
from repro.streaming.windows import TimeWindowedStream


class TestSyntheticPacketTrace:
    def test_records_sorted_by_time(self):
        records = synthetic_packet_trace(seed=1)
        times = [record.time for record in records]
        assert times == sorted(times)

    def test_deterministic_for_seed(self):
        spec = TrafficTraceSpec(duration_seconds=600.0, background_rate=5.0)
        a = synthetic_packet_trace(spec, seed=3)
        b = synthetic_packet_trace(spec, seed=3)
        assert [(r.u, r.v, r.time) for r in a] == [(r.u, r.v, r.time) for r in b]

    def test_no_self_loops(self):
        records = synthetic_packet_trace(seed=2)
        assert all(record.u != record.v for record in records)

    def test_anomalous_windows_have_more_triangles(self):
        spec = TrafficTraceSpec(
            num_hosts=400,
            duration_seconds=3000.0,
            background_rate=1.0,
            anomaly_intervals=(3,),
            anomaly_clique_size=15,
            window_seconds=300.0,
        )
        records = synthetic_packet_trace(spec, seed=5)
        windows = TimeWindowedStream(records, spec.window_seconds).window_streams()
        counts = [count_triangles(window.to_graph()) for window in windows]
        anomalous = counts[3]
        benign = [c for i, c in enumerate(counts) if i != 3]
        assert anomalous > 10 * max(1, max(benign))
