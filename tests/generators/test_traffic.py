"""Tests for the synthetic packet-trace generator."""

import pytest

from repro.generators.traffic import (
    TrafficTraceSpec,
    packet_flow_records,
    synthetic_packet_trace,
)
from repro.graph.triangles import count_triangles
from repro.streaming.windows import TimeWindowedStream


class TestSyntheticPacketTrace:
    def test_records_sorted_by_time(self):
        records = synthetic_packet_trace(seed=1)
        times = [record.time for record in records]
        assert times == sorted(times)

    def test_deterministic_for_seed(self):
        spec = TrafficTraceSpec(duration_seconds=600.0, background_rate=5.0)
        a = synthetic_packet_trace(spec, seed=3)
        b = synthetic_packet_trace(spec, seed=3)
        assert [(r.u, r.v, r.time) for r in a] == [(r.u, r.v, r.time) for r in b]

    def test_no_self_loops(self):
        records = synthetic_packet_trace(seed=2)
        assert all(record.u != record.v for record in records)

    def test_anomalous_windows_have_more_triangles(self):
        spec = TrafficTraceSpec(
            num_hosts=400,
            duration_seconds=3000.0,
            background_rate=1.0,
            anomaly_intervals=(3,),
            anomaly_clique_size=15,
            window_seconds=300.0,
        )
        records = synthetic_packet_trace(spec, seed=5)
        windows = TimeWindowedStream(records, spec.window_seconds).window_streams()
        counts = [count_triangles(window.to_graph()) for window in windows]
        anomalous = counts[3]
        benign = [c for i, c in enumerate(counts) if i != 3]
        assert anomalous > 10 * max(1, max(benign))


class TestPacketFlowRecords:
    def test_timestamps_cover_duration_and_sort_in_order(self):
        records = packet_flow_records(3000, duration_seconds=600.0, seed=4)
        assert len(records) == 3000
        times = [record.time for record in records]
        assert times == sorted(times)  # no jitter: delivery == timestamp order
        assert 0.0 <= min(times) and max(times) < 600.0

    def test_same_flows_as_packet_flow_stream(self):
        records = packet_flow_records(500, duration_seconds=60.0, seed=9)
        assert all(record.u != record.v for record in records)

    def test_out_of_order_delivery_is_bounded(self):
        records = packet_flow_records(
            2000,
            duration_seconds=600.0,
            out_of_order_fraction=0.3,
            max_delay_seconds=15.0,
            seed=9,
        )
        times = [record.time for record in records]
        assert times != sorted(times)
        high_water = times[0]
        worst = 0.0
        for time in times:
            worst = max(worst, high_water - time)
            high_water = max(high_water, time)
        assert 0.0 < worst <= 15.0

    def test_deterministic_for_seed(self):
        a = packet_flow_records(800, seed=6, out_of_order_fraction=0.2)
        b = packet_flow_records(800, seed=6, out_of_order_fraction=0.2)
        assert [(r.u, r.v, r.time) for r in a] == [(r.u, r.v, r.time) for r in b]

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            packet_flow_records(100, duration_seconds=0.0)
        with pytest.raises(ValueError):
            packet_flow_records(100, out_of_order_fraction=1.5)
        with pytest.raises(ValueError):
            packet_flow_records(100, max_delay_seconds=-1.0)
