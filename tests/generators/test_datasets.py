"""Tests for the dataset registry (synthetic analogues of Table II)."""

import pytest

from repro.exceptions import DatasetNotFoundError
from repro.generators.datasets import (
    available_datasets,
    clear_dataset_cache,
    dataset_spec,
    load_dataset,
    paper_dataset_table,
)


class TestRegistry:
    def test_eight_datasets_registered(self):
        names = available_datasets()
        assert len(names) == 8
        assert names[0] == "twitter-sim"
        assert "flickr-sim" in names
        assert "youtube-sim" in names

    def test_unknown_dataset_raises(self):
        with pytest.raises(DatasetNotFoundError):
            dataset_spec("imaginary-graph")
        with pytest.raises(DatasetNotFoundError):
            load_dataset("imaginary-graph")

    def test_spec_carries_paper_sizes(self):
        spec = dataset_spec("flickr-sim")
        assert spec.paper_name == "Flickr"
        assert spec.paper_nodes == 105_938
        assert spec.paper_edges == 2_316_948

    def test_paper_table_has_eight_rows(self):
        table = paper_dataset_table()
        assert len(table) == 8
        assert table[0][0] == "Twitter"


class TestLoading:
    def test_load_is_deterministic(self):
        clear_dataset_cache()
        a = load_dataset("youtube-sim", use_cache=False).edges()
        b = load_dataset("youtube-sim", use_cache=False).edges()
        assert a == b

    def test_cache_returns_same_object(self):
        clear_dataset_cache()
        first = load_dataset("youtube-sim")
        second = load_dataset("youtube-sim")
        assert first is second

    def test_streams_have_no_self_loops(self):
        stream = load_dataset("web-google-sim")
        assert all(u != v for u, v in stream)

    def test_sizes_ordered_like_paper(self):
        largest = len(load_dataset("twitter-sim"))
        smallest = len(load_dataset("youtube-sim"))
        assert largest > smallest

    @pytest.mark.parametrize("name", ["youtube-sim", "web-google-sim", "wiki-talk-sim"])
    def test_datasets_contain_triangles(self, name):
        from repro.graph.triangles import count_triangles

        stream = load_dataset(name)
        assert count_triangles(stream.to_graph()) > 100
