"""Integration tests spanning multiple subsystems."""

import math

import pytest

from repro import (
    ExactStreamingCounter,
    ReptConfig,
    ReptEstimator,
    load_dataset,
    parallelize,
    run_rept,
)
from repro.generators.traffic import TrafficTraceSpec, synthetic_packet_trace
from repro.graph.statistics import compute_statistics
from repro.metrics.errors import summarize_trials
from repro.metrics.local_errors import summarize_local_trials
from repro.streaming.readers import read_edge_list
from repro.streaming.transforms import shuffle_stream
from repro.streaming.windows import TimeWindowedStream
from repro.streaming.writers import write_edge_list


class TestFileToEstimatePipeline:
    def test_write_read_estimate_round_trip(self, tmp_path, clique_stream):
        """Stream -> file -> stream -> REPT estimate, end to end."""
        path = tmp_path / "clique.tsv"
        write_edge_list(clique_stream.edges(), path, header="12-clique")
        stream = read_edge_list(path, name="clique")
        estimate = ReptEstimator(ReptConfig(m=2, c=2, seed=1)).run(stream)
        truth = math.comb(12, 3)
        assert abs(estimate.global_count - truth) / truth < 0.5

    def test_registered_dataset_through_all_methods(self):
        """Every estimator family runs on a registered dataset prefix."""
        stream = load_dataset("youtube-sim").prefix(1500)
        truth = ExactStreamingCounter().run(stream).global_count
        assert truth > 0
        rept = ReptEstimator(ReptConfig(m=4, c=8, seed=1, track_local=False)).run(stream)
        mascot = parallelize("mascot", 4, 0.25, len(stream), seed=1, track_local=False).run(stream)
        triest = parallelize("triest", 4, 0.25, len(stream), seed=1, track_local=False).run(stream)
        gps = parallelize("gps", 4, 0.25, len(stream), seed=1, track_local=False).run(stream)
        for estimate in (rept, mascot, triest, gps):
            assert abs(estimate.global_count - truth) / truth < 1.0


class TestAccuracyOrdering:
    def test_rept_beats_parallel_mascot_on_dataset(self):
        """The paper's headline: REPT's NRMSE is lower than parallel MASCOT's
        under the same p and c, on a covariance-heavy dataset."""
        stream = load_dataset("flickr-sim").prefix(6000)
        edges = stream.edges()
        stats = compute_statistics(edges)
        truth = float(stats.num_triangles)
        trials = 16
        m, c = 10, 10
        rept_estimates = [
            ReptEstimator(ReptConfig(m=m, c=c, seed=seed, track_local=False))
            .run(edges)
            .global_count
            for seed in range(trials)
        ]
        mascot_estimates = [
            parallelize("mascot", c, 1.0 / m, len(edges), seed=seed, track_local=False)
            .run(edges)
            .global_count
            for seed in range(trials)
        ]
        rept_nrmse = summarize_trials(rept_estimates, truth).nrmse
        mascot_nrmse = summarize_trials(mascot_estimates, truth).nrmse
        assert rept_nrmse < mascot_nrmse

    def test_local_estimates_reasonable_on_dataset(self):
        stream = load_dataset("youtube-sim").prefix(2000)
        edges = stream.edges()
        stats = compute_statistics(edges)
        truth_local = {node: float(v) for node, v in stats.local_triangles.items()}
        trial_estimates = [
            ReptEstimator(ReptConfig(m=4, c=4, seed=seed)).run(edges).local_counts
            for seed in range(4)
        ]
        summary = summarize_local_trials(trial_estimates, truth_local)
        assert summary.nrmse < 5.0


class TestTrafficMonitoringScenario:
    def test_anomalous_interval_detected_via_rept(self):
        """The intro use case: per-interval triangle counts on a packet
        stream flag the interval containing a coordinated clique burst."""
        spec = TrafficTraceSpec(
            num_hosts=300,
            duration_seconds=2400.0,
            background_rate=4.0,
            anomaly_intervals=(5,),
            anomaly_clique_size=14,
            window_seconds=300.0,
        )
        records = synthetic_packet_trace(spec, seed=3)
        windows = TimeWindowedStream(records, spec.window_seconds).window_streams()
        estimates = []
        for index, window in enumerate(windows):
            estimator = ReptEstimator(ReptConfig(m=2, c=2, seed=100 + index, track_local=False))
            estimates.append(estimator.run(window).global_count)
        flagged = max(range(len(estimates)), key=estimates.__getitem__)
        assert flagged == 5

    def test_windowing_then_exact_counts_are_consistent(self):
        spec = TrafficTraceSpec(duration_seconds=1200.0, background_rate=2.0, anomaly_intervals=())
        records = synthetic_packet_trace(spec, seed=4)
        windows = TimeWindowedStream(records, 300.0).window_streams()
        total_edges = sum(len(window) for window in windows)
        assert total_edges == sum(1 for r in records if r.u != r.v)


class TestDriverConsistencyOnDataset:
    def test_serial_and_thread_identical_on_dataset(self):
        stream = load_dataset("web-google-sim").prefix(2000)
        config = ReptConfig(m=3, c=7, seed=42, track_local=False)
        serial = run_rept(stream.edges(), config, backend="serial")
        threaded = run_rept(stream.edges(), config, backend="thread")
        assert serial.global_count == pytest.approx(threaded.global_count)

    def test_stream_order_changes_estimate_but_not_truth(self):
        stream = load_dataset("youtube-sim").prefix(1500)
        shuffled = shuffle_stream(stream, seed=9)
        truth_a = ExactStreamingCounter().run(stream).global_count
        truth_b = ExactStreamingCounter().run(shuffled).global_count
        assert truth_a == truth_b
