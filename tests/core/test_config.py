"""Tests for ReptConfig validation and derived quantities."""

import pytest

from repro.core.config import ReptConfig
from repro.exceptions import ConfigurationError


class TestValidation:
    def test_rejects_non_positive_m(self):
        with pytest.raises(ConfigurationError):
            ReptConfig(m=0, c=1)

    def test_rejects_non_positive_c(self):
        with pytest.raises(ConfigurationError):
            ReptConfig(m=4, c=0)

    def test_rejects_non_integer_m(self):
        with pytest.raises(ConfigurationError):
            ReptConfig(m=2.5, c=1)  # type: ignore[arg-type]

    def test_rejects_unknown_hash_kind(self):
        with pytest.raises(ConfigurationError):
            ReptConfig(m=4, c=2, hash_kind="sha1")

    def test_seed_resolved_when_none(self):
        config = ReptConfig(m=4, c=2, seed=None)
        assert isinstance(config.seed, int)


class TestDerivedQuantities:
    def test_probability(self):
        assert ReptConfig(m=10, c=2, seed=1).probability == pytest.approx(0.1)

    def test_algorithm1_group_sizes(self):
        config = ReptConfig(m=10, c=4, seed=1)
        assert not config.uses_groups
        assert config.group_sizes() == [4]
        assert config.num_complete_groups == 0
        assert config.partial_group_size == 4
        assert not config.requires_eta

    def test_c_equal_m_uses_algorithm1(self):
        config = ReptConfig(m=8, c=8, seed=1)
        assert not config.uses_groups
        assert config.group_sizes() == [8]

    def test_algorithm2_exact_multiple(self):
        config = ReptConfig(m=4, c=12, seed=1)
        assert config.uses_groups
        assert config.group_sizes() == [4, 4, 4]
        assert config.num_complete_groups == 3
        assert config.partial_group_size == 0
        assert not config.requires_eta

    def test_algorithm2_with_partial_group(self):
        config = ReptConfig(m=4, c=10, seed=1)
        assert config.group_sizes() == [4, 4, 2]
        assert config.num_complete_groups == 2
        assert config.partial_group_size == 2
        assert config.requires_eta
        assert config.track_eta  # auto-enabled

    def test_track_eta_can_be_forced_on(self):
        config = ReptConfig(m=4, c=2, seed=1, track_eta=True)
        assert config.track_eta

    def test_track_eta_false_force_resolved_when_required(self):
        # c > m with c % m != 0: the Graybill-Deal combination needs η̂, so
        # an explicit False would silently corrupt the plug-in variances.
        config = ReptConfig(m=4, c=10, seed=1, track_eta=False)
        assert config.track_eta

    def test_track_eta_false_honoured_when_not_required(self):
        assert not ReptConfig(m=4, c=2, seed=1, track_eta=False).track_eta
        assert not ReptConfig(m=4, c=12, seed=1, track_eta=False).track_eta

    def test_group_hash_seeds_deterministic_and_distinct(self):
        config_a = ReptConfig(m=4, c=10, seed=5)
        config_b = ReptConfig(m=4, c=10, seed=5)
        assert config_a.group_hash_seeds() == config_b.group_hash_seeds()
        assert len(set(config_a.group_hash_seeds())) == 3

    def test_describe_mentions_algorithm(self):
        assert "Alg.1" in ReptConfig(m=4, c=2, seed=1).describe()
        assert "Alg.2" in ReptConfig(m=4, c=9, seed=1).describe()
