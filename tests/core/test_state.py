"""Tests for ProcessorGroup / ProcessorCounters (the per-edge update rules)."""

import math

import pytest

from repro.core.state import ProcessorCounters, ProcessorGroup
from repro.generators.planted import planted_triangles_stream
from repro.hashing import make_hash_function


def make_group(m=4, group_size=None, seed=1, track_eta=True, track_local=True):
    return ProcessorGroup(
        hash_function=make_hash_function("splitmix", m, seed=seed),
        group_size=group_size if group_size is not None else m,
        m=m,
        track_local=track_local,
        track_eta=track_eta,
    )


class TestConstruction:
    def test_invalid_group_size(self):
        with pytest.raises(ValueError):
            make_group(m=4, group_size=0)
        with pytest.raises(ValueError):
            make_group(m=4, group_size=5)

    def test_hash_range_must_match_m(self):
        with pytest.raises(ValueError):
            ProcessorGroup(make_hash_function("splitmix", 8, seed=1), group_size=4, m=4)

    def test_processor_count(self):
        group = make_group(m=6, group_size=3)
        assert len(group.processors) == 3


class TestSemiTriangleCounting:
    def test_full_group_counts_every_triangle_once(self, clique_stream):
        """With group_size == m the union of processors stores every edge,
        and every triangle is counted as a semi-triangle on exactly one
        processor (the one holding its first two stream edges) only if those
        two edges hash to the same processor — so the *scaled* sum is what
        is unbiased, not the raw sum.  With m = 1 the single processor holds
        everything and the raw count is exact."""
        group = ProcessorGroup(
            make_hash_function("splitmix", 1, seed=1), group_size=1, m=1,
            track_local=True, track_eta=True,
        )
        for u, v in clique_stream:
            group.process_edge(u, v)
        assert sum(group.tau_values()) == math.comb(12, 3)

    def test_local_counts_with_m1(self, clique_stream):
        group = ProcessorGroup(
            make_hash_function("splitmix", 1, seed=1), group_size=1, m=1,
            track_local=True, track_eta=False,
        )
        for u, v in clique_stream:
            group.process_edge(u, v)
        sums = group.local_tau_sums()
        assert all(value == math.comb(11, 2) for value in sums.values())

    def test_eta_counters_with_m1_match_exact_eta(self):
        """With every edge stored, η(i) equals the exact η of the stream."""
        stream = planted_triangles_stream(6, shared_edge=True)
        group = ProcessorGroup(
            make_hash_function("splitmix", 1, seed=1), group_size=1, m=1,
            track_local=True, track_eta=True,
        )
        for u, v in stream:
            group.process_edge(u, v)
        assert sum(group.eta_values()) == math.comb(6, 2)

    def test_eta_local_with_m1(self):
        stream = planted_triangles_stream(5, shared_edge=True)
        group = ProcessorGroup(
            make_hash_function("splitmix", 1, seed=1), group_size=1, m=1,
            track_local=True, track_eta=True,
        )
        for u, v in stream:
            group.process_edge(u, v)
        eta_local = group.local_eta_sums()
        assert eta_local[0] == math.comb(5, 2)
        assert eta_local[1] == math.comb(5, 2)

    def test_partial_group_discards_other_buckets(self):
        """With group_size < m some edges are not stored anywhere."""
        group = make_group(m=8, group_size=2, seed=3)
        for i in range(50):
            group.process_edge(i, i + 1)
        stored = group.total_edges_stored()
        assert 0 < stored < 50

    def test_edge_sets_are_disjoint(self, medium_stream):
        group = make_group(m=4, group_size=4, seed=5, track_eta=False)
        for u, v in medium_stream.prefix(2000):
            group.process_edge(u, v)
        edge_sets = [set() for _ in group.processors]
        for slot, u, v in group.stored_edges():
            edge_sets[slot].add((u, v))
        for i in range(len(edge_sets)):
            for j in range(i + 1, len(edge_sets)):
                assert not (edge_sets[i] & edge_sets[j])

    def test_every_stored_edge_went_to_its_hash_bucket(self):
        group = make_group(m=4, group_size=4, seed=7, track_eta=False)
        edges = [(i, j) for i in range(20) for j in range(i + 1, 20)]
        for u, v in edges:
            group.process_edge(u, v)
        records = group.stored_edges()
        assert len(records) == len(edges)
        for slot, u, v in records:
            assert group.hash_function.bucket(u, v) == slot

    def test_track_local_disabled_keeps_dicts_empty(self, clique_stream):
        group = make_group(m=2, group_size=2, track_local=False, track_eta=False)
        for u, v in clique_stream:
            group.process_edge(u, v)
        assert group.local_tau_sums() == {}


class TestProcessorCounters:
    def test_store_edge_initialises_triangle_counter(self):
        counters = ProcessorCounters()
        counters.store_edge(1, 2, closing_triangles=3)
        assert counters.edge_triangles[(1, 2)] == 3
        assert counters.edges_stored == 1
        assert counters.neighbors(1) == {2}

    def test_neighbors_of_unknown_node_empty(self):
        assert ProcessorCounters().neighbors("nope") == frozenset()
