"""Tests for ProcessorGroup / ProcessorCounters (the per-edge update rules)."""

import math

import pytest

from repro.core.config import ReptConfig
from repro.core.rept import ReptEstimator
from repro.core.state import GroupStateSet, ProcessorCounters, ProcessorGroup
from repro.generators.planted import planted_triangles_stream
from repro.hashing import make_hash_function


def make_group(m=4, group_size=None, seed=1, track_eta=True, track_local=True):
    return ProcessorGroup(
        hash_function=make_hash_function("splitmix", m, seed=seed),
        group_size=group_size if group_size is not None else m,
        m=m,
        track_local=track_local,
        track_eta=track_eta,
    )


class TestConstruction:
    def test_invalid_group_size(self):
        with pytest.raises(ValueError):
            make_group(m=4, group_size=0)
        with pytest.raises(ValueError):
            make_group(m=4, group_size=5)

    def test_hash_range_must_match_m(self):
        with pytest.raises(ValueError):
            ProcessorGroup(make_hash_function("splitmix", 8, seed=1), group_size=4, m=4)

    def test_processor_count(self):
        group = make_group(m=6, group_size=3)
        assert len(group.processors) == 3


class TestSemiTriangleCounting:
    def test_full_group_counts_every_triangle_once(self, clique_stream):
        """With group_size == m the union of processors stores every edge,
        and every triangle is counted as a semi-triangle on exactly one
        processor (the one holding its first two stream edges) only if those
        two edges hash to the same processor — so the *scaled* sum is what
        is unbiased, not the raw sum.  With m = 1 the single processor holds
        everything and the raw count is exact."""
        group = ProcessorGroup(
            make_hash_function("splitmix", 1, seed=1), group_size=1, m=1,
            track_local=True, track_eta=True,
        )
        for u, v in clique_stream:
            group.process_edge(u, v)
        assert sum(group.tau_values()) == math.comb(12, 3)

    def test_local_counts_with_m1(self, clique_stream):
        group = ProcessorGroup(
            make_hash_function("splitmix", 1, seed=1), group_size=1, m=1,
            track_local=True, track_eta=False,
        )
        for u, v in clique_stream:
            group.process_edge(u, v)
        sums = group.local_tau_sums()
        assert all(value == math.comb(11, 2) for value in sums.values())

    def test_eta_counters_with_m1_match_exact_eta(self):
        """With every edge stored, η(i) equals the exact η of the stream."""
        stream = planted_triangles_stream(6, shared_edge=True)
        group = ProcessorGroup(
            make_hash_function("splitmix", 1, seed=1), group_size=1, m=1,
            track_local=True, track_eta=True,
        )
        for u, v in stream:
            group.process_edge(u, v)
        assert sum(group.eta_values()) == math.comb(6, 2)

    def test_eta_local_with_m1(self):
        stream = planted_triangles_stream(5, shared_edge=True)
        group = ProcessorGroup(
            make_hash_function("splitmix", 1, seed=1), group_size=1, m=1,
            track_local=True, track_eta=True,
        )
        for u, v in stream:
            group.process_edge(u, v)
        eta_local = group.local_eta_sums()
        assert eta_local[0] == math.comb(5, 2)
        assert eta_local[1] == math.comb(5, 2)

    def test_partial_group_discards_other_buckets(self):
        """With group_size < m some edges are not stored anywhere."""
        group = make_group(m=8, group_size=2, seed=3)
        for i in range(50):
            group.process_edge(i, i + 1)
        stored = group.total_edges_stored()
        assert 0 < stored < 50

    def test_edge_sets_are_disjoint(self, medium_stream):
        group = make_group(m=4, group_size=4, seed=5, track_eta=False)
        for u, v in medium_stream.prefix(2000):
            group.process_edge(u, v)
        edge_sets = [set() for _ in group.processors]
        for slot, u, v in group.stored_edges():
            edge_sets[slot].add((u, v))
        for i in range(len(edge_sets)):
            for j in range(i + 1, len(edge_sets)):
                assert not (edge_sets[i] & edge_sets[j])

    def test_every_stored_edge_went_to_its_hash_bucket(self):
        group = make_group(m=4, group_size=4, seed=7, track_eta=False)
        edges = [(i, j) for i in range(20) for j in range(i + 1, 20)]
        for u, v in edges:
            group.process_edge(u, v)
        records = group.stored_edges()
        assert len(records) == len(edges)
        for slot, u, v in records:
            assert group.hash_function.bucket(u, v) == slot

    def test_track_local_disabled_keeps_dicts_empty(self, clique_stream):
        group = make_group(m=2, group_size=2, track_local=False, track_eta=False)
        for u, v in clique_stream:
            group.process_edge(u, v)
        assert group.local_tau_sums() == {}


class TestProcessorCounters:
    def test_store_edge_initialises_triangle_counter(self):
        counters = ProcessorCounters()
        counters.store_edge(1, 2, closing_triangles=3)
        assert counters.edge_triangles[(1, 2)] == 3
        assert counters.edges_stored == 1
        assert counters.neighbors(1) == {2}

    def test_neighbors_of_unknown_node_empty(self):
        assert ProcessorCounters().neighbors("nope") == frozenset()


def _dup_heavy_stream():
    """Duplicates, self-loops and triangles over a tiny node universe."""
    edges = []
    for r in range(3):
        edges.extend(
            [(0, 1), (1, 2), (0, 2), (2, 2), (1, 2), (3, 4), (4, 5), (3, 5), (0, 3)]
        )
        edges.extend((i, (i + r) % 7) for i in range(7))
    return edges


class TestGroupStateSet:
    """The shared mergeable-state abstraction (estimator/backends/monitor)."""

    CONFIGS = [
        ReptConfig(m=4, c=3, seed=21),  # Alg. 1, c < m
        ReptConfig(m=3, c=8, seed=21),  # Alg. 2 with partial group: η tracked
        ReptConfig(m=4, c=8, seed=21, track_local=False),
    ]

    def _assert_same(self, estimate, expected):
        assert estimate.global_count == expected.global_count
        assert estimate.local_counts == expected.local_counts
        assert estimate.edges_stored == expected.edges_stored
        assert estimate.metadata.get("eta_hat") == expected.metadata.get("eta_hat")

    @pytest.mark.parametrize("config", CONFIGS, ids=["alg1", "alg2-eta", "alg2"])
    def test_matches_estimator_bit_for_bit(self, config):
        edges = _dup_heavy_stream()
        reference = ReptEstimator(config)
        reference.process_edges(edges)

        state = GroupStateSet(config)
        n = state.ingest_stream(edges, batch_edges=7)
        assert n == len(edges)
        self._assert_same(state.estimate(n), reference.estimate())

    @pytest.mark.parametrize("config", CONFIGS, ids=["alg1", "alg2-eta", "alg2"])
    def test_shared_encoding_across_state_sets(self, config):
        """One EncodedBatch serves several state sets sharing the interner."""
        edges = _dup_heavy_stream()
        template = GroupStateSet(config)
        functions = [group.hash_function for group in template.groups]
        a = GroupStateSet(config, interner=template.interner, hash_functions=functions)
        b = GroupStateSet(config, interner=template.interner, hash_functions=functions)
        n = 0
        for start in range(0, len(edges), 9):
            batch = template.encode(edges[start : start + 9])
            a.ingest_encoded(batch)
            b.ingest_encoded(batch)
            n += batch.n_records
        reference = ReptEstimator(config)
        reference.process_edges(edges)
        self._assert_same(a.estimate(n), reference.estimate())
        self._assert_same(b.estimate(n), reference.estimate())

    @pytest.mark.parametrize("config", CONFIGS, ids=["alg1", "alg2-eta", "alg2"])
    def test_pane_delta_roll_merge_is_exact(self, config):
        """take_pane_deltas/merge_pane_deltas reproduce an uninterrupted run."""
        edges = _dup_heavy_stream()
        live = GroupStateSet(config)
        acc = GroupStateSet(config, interner=live.interner)
        n = 0
        for start in range(0, len(edges), 11):  # every chunk = one "pane"
            batch = live.encode(edges[start : start + 11])
            stored = live.ingest_encoded(batch, collect_stored=True)
            n += batch.n_records
            acc.merge_pane_deltas(live.take_pane_deltas(stored))
        reference = ReptEstimator(config)
        reference.process_edges(edges)
        self._assert_same(acc.estimate(n), reference.estimate())
        # The live set keeps its stored-edge index but zero counters.
        assert live.total_edges_stored() == 0
        assert acc.total_edges_stored() == reference.edges_stored

    def test_pane_delta_snapshots_externalize_and_refold(self):
        config = ReptConfig(m=3, c=8, seed=5)
        edges = _dup_heavy_stream()
        live = GroupStateSet(config)
        snapshots_per_pane = []
        n = 0
        for start in range(0, len(edges), 13):
            batch = live.encode(edges[start : start + 13])
            stored = live.ingest_encoded(batch, collect_stored=True)
            n += batch.n_records
            deltas = live.take_pane_deltas(stored)
            snapshots_per_pane.append(
                [
                    group.externalize_deltas(group_deltas)
                    for group, group_deltas in zip(live.groups, deltas)
                ]
            )
        rebuilt = GroupStateSet(config)  # private interner: snapshots are raw-keyed
        for snapshots in snapshots_per_pane:
            rebuilt.merge_snapshots(snapshots)
        reference = ReptEstimator(config)
        reference.process_edges(edges)
        self._assert_same(rebuilt.estimate(n), reference.estimate())

    def test_hash_function_count_validated(self):
        config = ReptConfig(m=4, c=8, seed=1)
        template = GroupStateSet(config)
        with pytest.raises(ValueError, match="hash functions"):
            GroupStateSet(config, hash_functions=template.groups[:1])

    def test_merge_snapshots_shape_validated(self):
        config = ReptConfig(m=4, c=8, seed=1)
        state = GroupStateSet(config)
        with pytest.raises(ValueError, match="group snapshots"):
            state.merge_snapshots(state.snapshot()[:1])

    def test_merge_deltas_shape_validated(self):
        config = ReptConfig(m=4, c=4, seed=1)
        state = GroupStateSet(config)
        with pytest.raises(ValueError, match="per-slot deltas"):
            state.groups[0].merge_deltas([ProcessorCounters()])
