"""Deterministic tests for the batched ingestion pipeline.

Covers the :class:`NodeInterner` table, the estimator-level
``process_edges`` override (bit-identical to per-edge ingestion across
configurations and node-id types), the standalone
:meth:`ProcessorGroup.process_edges` batch path, and the batch plumbing of
``DriverBackedRept``.
"""

import numpy as np
import pytest

from repro.core import DriverBackedRept, NodeInterner, ReptConfig, ReptEstimator
from repro.core.state import ProcessorGroup
from repro.generators.planted import planted_triangles_stream
from repro.generators.random_graphs import barabasi_albert_stream
from repro.hashing import make_hash_function
from repro.types import canonical_edge


def noisy_stream():
    """A stream with duplicates and self-loops over int nodes."""
    base = barabasi_albert_stream(120, 3, triad_closure=0.5, seed=21).edges()
    stream = []
    for index, edge in enumerate(base):
        stream.append(edge)
        if index % 3 == 0:
            stream.append(base[index // 2])  # duplicate re-arrival
        if index % 17 == 0:
            stream.append((edge[0], edge[0]))  # self-loop
    return stream


def assert_identical(reference, batched):
    assert batched.global_count == reference.global_count
    assert batched.local_counts == reference.local_counts
    assert batched.edges_processed == reference.edges_processed
    assert batched.edges_stored == reference.edges_stored
    assert batched.metadata == reference.metadata


class TestNodeInterner:
    def test_ids_are_dense_and_stable(self):
        interner = NodeInterner()
        assert interner.intern("a") == 0
        assert interner.intern("b") == 1
        assert interner.intern("a") == 0
        assert interner.node_of(1) == "b"
        assert interner.id_of("b") == 1
        assert interner.id_of("missing") is None
        assert len(interner) == 2
        assert "a" in interner

    def test_key_array_matches_scalar_keys(self):
        from repro.hashing import stable_node_key

        interner = NodeInterner()
        nodes = [5, "alpha", -3, 2**70, ("t", 1)]
        for node in nodes:
            interner.intern(node)
        keys = interner.key_array()
        assert keys.dtype == np.uint64
        for index, node in enumerate(nodes):
            assert int(keys[index]) == stable_node_key(node) % 2**64

    def test_encode_pairs_canonicalises_and_counts(self):
        interner = NodeInterner()
        seen = set()
        cu, cv, firsts, n = interner.encode_pairs(
            [(2, 1), (1, 2), (3, 3), (1, 2)], seen
        )
        assert n == 4  # self-loop counted
        assert len(cu) == 3  # but dropped from the encoded batch
        # Canonical orientation matches canonical_edge on the raw ids.
        pairs = [(interner.node_of(a), interner.node_of(b)) for a, b in zip(cu, cv)]
        assert pairs == [canonical_edge(2, 1)] * 3
        assert firsts == [True, False, False]

    def test_encode_pairs_mixed_types_match_canonical_edge(self):
        interner = NodeInterner()
        raw = [(1, "1"), ("b", 3), (10, "2"), ("2", 3)]
        cu, cv, _, _ = interner.encode_pairs(raw, set())
        for (a, b), (u, v) in zip(zip(cu, cv), raw):
            assert (interner.node_of(a), interner.node_of(b)) == canonical_edge(u, v)


class TestReptBatchEquivalence:
    @pytest.mark.parametrize(
        "m,c,track_local",
        [(4, 4, True), (4, 2, True), (3, 8, True), (16, 32, False), (3, 7, False)],
    )
    def test_batch_matches_per_edge(self, m, c, track_local):
        edges = noisy_stream()
        reference = ReptEstimator(
            ReptConfig(m=m, c=c, seed=77, track_local=track_local)
        )
        for u, v in edges:
            reference.process_edge(u, v)
        batched = ReptEstimator(ReptConfig(m=m, c=c, seed=77, track_local=track_local))
        for start in range(0, len(edges), 97):
            batched.process_edges(edges[start : start + 97])
        assert_identical(reference.estimate(), batched.estimate())

    @pytest.mark.parametrize("hash_kind", ["splitmix", "tabulation"])
    def test_batch_matches_per_edge_for_each_hash_family(self, hash_kind):
        edges = noisy_stream()
        config = dict(m=4, c=9, seed=5, hash_kind=hash_kind)
        reference = ReptEstimator(ReptConfig(**config)).run(edges)
        batched = ReptEstimator(ReptConfig(**config)).run(edges, batch_size=64)
        assert_identical(reference, batched)

    def test_batch_with_equal_but_distinct_type_nodes(self):
        """1, 1.0 and True are one node under dict semantics; the hash layer
        must agree, or the per-edge path (hashing each raw arrival) and the
        batch path (one memoised key per interned node) diverge."""
        edges = [(1, 2), (1.0, 3), (2, 3), (1.0, 2), (True, 4), (0, False)]
        reference = ReptEstimator(ReptConfig(m=4, c=4, seed=5)).run(edges)
        batched = ReptEstimator(ReptConfig(m=4, c=4, seed=5)).run(edges, batch_size=2)
        assert_identical(reference, batched)
        # (1, 2) and (1.0, 2) are the same edge: stored at most once.
        assert reference.edges_stored <= 4

    def test_batch_with_string_nodes(self):
        edges = [(f"host-{u}", f"host-{v}") for u, v in noisy_stream()]
        reference = ReptEstimator(ReptConfig(m=3, c=8, seed=13)).run(edges)
        batched = ReptEstimator(ReptConfig(m=3, c=8, seed=13)).run(edges, batch_size=50)
        assert_identical(reference, batched)

    def test_eta_heavy_stream_matches(self):
        # Shared-edge triangle fans maximise the η pair-counter coupling.
        edges = planted_triangles_stream(8, shared_edge=True).edges() * 3
        config = dict(m=2, c=5, seed=3)  # partial group -> η required
        reference = ReptEstimator(ReptConfig(**config)).run(edges)
        batched = ReptEstimator(ReptConfig(**config)).run(edges, batch_size=7)
        assert_identical(reference, batched)
        assert reference.metadata["eta_tracked"] == 1.0

    def test_empty_and_loop_only_batches(self):
        estimator = ReptEstimator(ReptConfig(m=4, c=4, seed=1))
        estimator.process_edges([])
        estimator.process_edges([(1, 1), (2, 2)])
        assert estimator.edges_processed == 2
        assert estimator.edges_stored == 0

    def test_process_stream_rejects_bad_batch_size(self):
        estimator = ReptEstimator(ReptConfig(m=4, c=4, seed=1))
        with pytest.raises(ValueError):
            estimator.process_stream([(1, 2)], batch_size=0)


class TestProcessorGroupBatch:
    def make_group(self, **kwargs):
        kwargs.setdefault("group_size", 3)
        m = kwargs.setdefault("m", 4)
        seed = kwargs.pop("seed", 11)
        return ProcessorGroup(
            hash_function=make_hash_function("splitmix", m, seed=seed), **kwargs
        )

    def test_standalone_batch_matches_per_edge(self):
        edges = [(u, v) for u, v in noisy_stream() if u != v]
        reference = self.make_group(track_eta=True)
        for u, v in edges:
            reference.process_edge(u, v)
        batched = self.make_group(track_eta=True)
        for start in range(0, len(edges), 41):
            batched.process_edges(edges[start : start + 41])
        assert batched.tau_values() == reference.tau_values()
        assert batched.eta_values() == reference.eta_values()
        assert batched.local_tau_sums() == reference.local_tau_sums()
        assert batched.local_eta_sums() == reference.local_eta_sums()
        assert batched.total_edges_stored() == reference.total_edges_stored()

    def test_batch_after_seed_adjacency_matches(self):
        """First-occurrence flags derived from seeded adjacency are exact."""
        edges = [(u, v) for u, v in noisy_stream() if u != v]
        split = len(edges) // 2
        reference = self.make_group(track_eta=True)
        for u, v in edges:
            reference.process_edge(u, v)

        prefix = self.make_group(track_eta=True)
        for u, v in edges[:split]:
            prefix.process_edge(u, v)
        worker = self.make_group(track_eta=True)
        worker.seed_adjacency(prefix.stored_edges())
        worker.process_edges(edges[split:])  # duplicates of stored edges inside

        merged = self.make_group(track_eta=True)
        merged.merge(prefix)
        merged.merge(worker)
        assert merged.tau_values() == reference.tau_values()
        assert merged.eta_values() == reference.eta_values()
        assert merged.total_edges_stored() == reference.total_edges_stored()


class TestDriverBackedBatch:
    def test_process_edges_buffers_in_bulk(self):
        edges = noisy_stream()
        per_edge = DriverBackedRept(ReptConfig(m=3, c=5, seed=9), backend="serial")
        for u, v in edges:
            per_edge.process_edge(u, v)
        batched = DriverBackedRept(ReptConfig(m=3, c=5, seed=9), backend="serial")
        batched.process_edges(edges)
        assert batched.edges_processed == per_edge.edges_processed
        assert_identical(per_edge.estimate(), batched.estimate())
