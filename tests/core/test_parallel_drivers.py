"""Tests for the serial / thread / process REPT drivers."""

import pytest

from repro.core.config import ReptConfig
from repro.core.parallel import DriverBackedRept, run_rept
from repro.core.rept import ReptEstimator
from repro.exceptions import ConfigurationError


class TestDriverEquivalence:
    def test_serial_matches_estimator(self, clique_stream):
        config = ReptConfig(m=3, c=7, seed=5)
        direct = ReptEstimator(config).run(clique_stream)
        driven = run_rept(clique_stream.edges(), config, backend="serial")
        assert driven.global_count == pytest.approx(direct.global_count)
        assert driven.local_counts == direct.local_counts

    def test_thread_backend_matches_serial(self, clique_stream):
        config = ReptConfig(m=3, c=7, seed=5)
        serial = run_rept(clique_stream.edges(), config, backend="serial")
        threaded = run_rept(clique_stream.edges(), config, backend="thread")
        assert threaded.global_count == pytest.approx(serial.global_count)
        assert threaded.edges_stored == serial.edges_stored

    @pytest.mark.slow
    def test_process_backend_matches_serial(self, clique_stream):
        config = ReptConfig(m=2, c=4, seed=5)
        serial = run_rept(clique_stream.edges(), config, backend="serial")
        processed = run_rept(clique_stream.edges(), config, backend="process", max_workers=2)
        assert processed.global_count == pytest.approx(serial.global_count)

    def test_unknown_backend_rejected(self, triangle_stream):
        with pytest.raises(ConfigurationError):
            run_rept(triangle_stream.edges(), ReptConfig(m=2, c=2, seed=1), backend="gpu")

    def test_single_group_short_circuits_pools(self, triangle_stream):
        # c <= m means one group; the pooled backends fall back to inline work.
        config = ReptConfig(m=4, c=2, seed=1)
        estimate = run_rept(triangle_stream.edges(), config, backend="thread")
        assert estimate.edges_processed == 3

    def test_self_loops_skipped_by_driver(self):
        config = ReptConfig(m=1, c=1, seed=1)
        estimate = run_rept([(0, 0), (0, 1), (1, 2), (0, 2)], config)
        assert estimate.global_count == pytest.approx(1.0)

    def test_self_loops_skipped_by_chunked_driver(self):
        config = ReptConfig(m=1, c=1, seed=1)
        estimate = run_rept(
            [(0, 0), (0, 1), (1, 2), (0, 2)], config,
            backend="chunked-serial", chunk_size=2,
        )
        assert estimate.global_count == pytest.approx(1.0)
        assert estimate.edges_processed == 4

    def test_accepts_generator_input(self, triangle_stream):
        config = ReptConfig(m=2, c=2, seed=1)
        estimate = run_rept((edge for edge in triangle_stream.edges()), config)
        assert estimate.edges_processed == 3

    def test_chunked_accepts_empty_stream(self):
        estimate = run_rept([], ReptConfig(m=2, c=2, seed=1), backend="chunked-serial")
        assert estimate.global_count == 0.0
        assert estimate.edges_processed == 0

    def test_chunk_size_rejected_when_invalid(self, triangle_stream):
        with pytest.raises(ConfigurationError):
            run_rept(
                triangle_stream.edges(), ReptConfig(m=2, c=2, seed=1),
                backend="chunked-serial", chunk_size=-3,
            )


class TestDriverBackedRept:
    def test_matches_direct_estimator(self, clique_stream):
        config = ReptConfig(m=3, c=7, seed=5)
        direct = ReptEstimator(config).run(clique_stream)
        adapted = DriverBackedRept(config, backend="chunked-serial", chunk_size=50).run(
            clique_stream
        )
        assert adapted.global_count == direct.global_count
        assert adapted.local_counts == direct.local_counts
        assert adapted.metadata["algorithm"] == direct.metadata["algorithm"]

    def test_counts_edges_like_one_pass_estimators(self):
        adapter = DriverBackedRept(ReptConfig(m=2, c=2, seed=1))
        adapter.process_edge(0, 1)
        adapter.process_edge(3, 3)  # counted, never estimated
        assert adapter.edges_processed == 2
        assert adapter.estimate().edges_processed == 2

    def test_rejects_unknown_backend(self):
        with pytest.raises(ConfigurationError):
            DriverBackedRept(ReptConfig(m=2, c=2, seed=1), backend="gpu")

    def test_describe_names_backend(self):
        adapter = DriverBackedRept(ReptConfig(m=2, c=2, seed=1), backend="chunked-serial")
        assert "chunked-serial" in adapter.describe()
