"""Cross-backend equivalence: the acceptance gate for the chunked engine.

Every execution backend must return *bit-identical* global and local
estimates for the same :class:`ReptConfig` and stream, across the full
algorithm grid: ``c < m`` and ``c == m`` (Algorithm 1), ``c % m == 0``
(complete groups only) and ``c % m != 0`` (partial group, Graybill–Deal
combination with η̂).  Exact ``==`` comparisons are intentional — the
combination arithmetic is a pure function of integer counters, so any
drift indicates a broken merge, not floating-point noise.
"""

import pytest

from repro.core.config import ReptConfig
from repro.core.parallel import run_rept
from repro.core.rept import ReptEstimator
from repro.generators.random_graphs import barabasi_albert_stream

#: (m, c) covering c < m, c == m, c % m == 0 and c % m != 0.
GRID = [(4, 3), (4, 4), (3, 6), (4, 11)]

CHUNKED_BACKENDS = ("chunked-serial", "chunked-process")
ALL_BACKENDS = ("thread", "process") + CHUNKED_BACKENDS


@pytest.fixture(scope="module")
def grid_stream():
    base = barabasi_albert_stream(250, 3, triad_closure=0.5, seed=21).edges()
    # Duplicate re-arrivals exercise the already_stored path across chunks.
    return base + base[:80]


def assert_identical(estimate, reference):
    assert estimate.global_count == reference.global_count
    assert estimate.local_counts == reference.local_counts
    assert estimate.edges_stored == reference.edges_stored
    assert estimate.edges_processed == reference.edges_processed
    for key in ("tau_hat_complete", "tau_hat_partial", "eta_hat"):
        assert estimate.metadata.get(key) == reference.metadata.get(key)


class TestBackendEquivalence:
    @pytest.mark.parametrize("m,c", GRID)
    def test_chunked_serial_matches_serial(self, grid_stream, m, c):
        config = ReptConfig(m=m, c=c, seed=13)
        reference = run_rept(grid_stream, config, backend="serial")
        estimate = run_rept(
            grid_stream, config, backend="chunked-serial", chunk_size=97
        )
        assert_identical(estimate, reference)

    @pytest.mark.parametrize("m,c", GRID)
    def test_thread_matches_serial(self, grid_stream, m, c):
        config = ReptConfig(m=m, c=c, seed=13)
        reference = run_rept(grid_stream, config, backend="serial")
        assert_identical(run_rept(grid_stream, config, backend="thread"), reference)

    @pytest.mark.slow
    @pytest.mark.parametrize("m,c", GRID)
    def test_process_backends_match_serial(self, grid_stream, m, c):
        config = ReptConfig(m=m, c=c, seed=13)
        reference = run_rept(grid_stream, config, backend="serial")
        for backend in ("process", "chunked-process"):
            estimate = run_rept(
                grid_stream, config, backend=backend, chunk_size=97, max_workers=2
            )
            assert_identical(estimate, reference)

    @pytest.mark.parametrize("m,c", GRID)
    def test_estimator_matches_chunked(self, grid_stream, m, c):
        config = ReptConfig(m=m, c=c, seed=13)
        direct = ReptEstimator(config).run(grid_stream)
        chunked = run_rept(
            grid_stream, config, backend="chunked-serial", chunk_size=97
        )
        assert_identical(chunked, direct)

    def test_chunk_size_does_not_matter(self, grid_stream):
        config = ReptConfig(m=4, c=11, seed=13)
        reference = run_rept(grid_stream, config, backend="serial")
        for chunk_size in (1, 7, 64, 10_000):
            estimate = run_rept(
                grid_stream, config, backend="chunked-serial", chunk_size=chunk_size
            )
            assert_identical(estimate, reference)

    def test_chunked_metadata_reports_sharding(self, grid_stream):
        config = ReptConfig(m=4, c=3, seed=13)
        estimate = run_rept(
            grid_stream, config, backend="chunked-serial", chunk_size=100
        )
        assert estimate.metadata["num_chunks"] == pytest.approx(
            -(-len(grid_stream) // 100)
        )
        assert estimate.metadata["chunk_edges_max"] <= 100
