"""Tests for the estimate-combination arithmetic (including Graybill–Deal)."""

import pytest

from repro.core.combine import GroupSummary, combine_group_estimates, graybill_deal


class TestGraybillDeal:
    def test_inverse_variance_weighting(self):
        estimate, variance = graybill_deal(10.0, 1.0, 20.0, 4.0)
        # weights: v2/(v1+v2)=0.8 on first, 0.2 on second
        assert estimate == pytest.approx(0.8 * 10 + 0.2 * 20)
        assert variance == pytest.approx(4.0 / 5.0)

    def test_combined_variance_below_both(self):
        _, variance = graybill_deal(5.0, 2.0, 7.0, 3.0)
        assert variance < 2.0 and variance < 3.0

    def test_zero_variance_first_dominates(self):
        estimate, variance = graybill_deal(10.0, 0.0, 99.0, 5.0)
        assert estimate == 10.0
        assert variance == 0.0

    def test_zero_variance_second_dominates(self):
        estimate, _ = graybill_deal(10.0, 5.0, 99.0, 0.0)
        assert estimate == 99.0

    def test_both_zero_variances_average(self):
        estimate, variance = graybill_deal(10.0, 0.0, 20.0, 0.0)
        assert estimate == 15.0
        assert variance == 0.0

    def test_symmetry(self):
        a, _ = graybill_deal(3.0, 1.0, 9.0, 2.0)
        b, _ = graybill_deal(9.0, 2.0, 3.0, 1.0)
        assert a == pytest.approx(b)


def _summary(group_size, is_complete, tau_sum, eta_sum=0.0, local_tau=None, local_eta=None):
    return GroupSummary(
        group_size=group_size,
        is_complete=is_complete,
        tau_sum=tau_sum,
        eta_sum=eta_sum,
        local_tau=local_tau or {},
        local_eta=local_eta or {},
        edges_stored=0,
    )


class TestCombineAlgorithm1:
    def test_scaling_factor(self):
        # c = 2, m = 4: tau_hat = (16 / 2) * sum(tau_i)
        summary = _summary(group_size=2, is_complete=False, tau_sum=5.0)
        estimate = combine_group_estimates([summary], m=4, c=2)
        assert estimate.global_count == pytest.approx(16 / 2 * 5.0)

    def test_local_scaling(self):
        summary = _summary(2, False, 5.0, local_tau={"a": 3.0})
        estimate = combine_group_estimates([summary], m=4, c=2)
        assert estimate.local_count("a") == pytest.approx(16 / 2 * 3.0)

    def test_zero_counts_give_zero_estimate(self):
        summary = _summary(3, False, 0.0)
        assert combine_group_estimates([summary], m=3, c=3).global_count == 0.0


class TestCombineAlgorithm2:
    def test_exact_multiple_scaling(self):
        # c = 2m with m = 3: tau_hat = (m / c1) * sum over complete groups.
        groups = [_summary(3, True, 4.0), _summary(3, True, 6.0)]
        estimate = combine_group_estimates(groups, m=3, c=6)
        assert estimate.global_count == pytest.approx(3 / 2 * 10.0)

    def test_partial_group_combination_between_ingredients(self):
        groups = [
            _summary(3, True, 9.0, eta_sum=2.0),
            _summary(2, False, 1.0, eta_sum=1.0),
        ]
        estimate = combine_group_estimates(groups, m=3, c=5)
        tau_1 = 3 / 1 * 9.0
        tau_2 = 9 / 2 * 1.0
        low, high = sorted([tau_1, tau_2])
        assert low <= estimate.global_count <= high
        assert estimate.metadata["tau_hat_complete"] == pytest.approx(tau_1)
        assert estimate.metadata["tau_hat_partial"] == pytest.approx(tau_2)

    def test_eta_hat_scaling(self):
        groups = [
            _summary(2, True, 1.0, eta_sum=3.0),
            _summary(1, False, 1.0, eta_sum=1.0),
        ]
        estimate = combine_group_estimates(groups, m=2, c=3)
        assert estimate.metadata["eta_hat"] == pytest.approx((2**3 / 3) * 4.0)

    def test_two_partial_groups_rejected(self):
        groups = [_summary(2, False, 1.0), _summary(2, False, 1.0)]
        with pytest.raises(ValueError):
            combine_group_estimates(groups, m=3, c=4)

    def test_local_combination_covers_union_of_nodes(self):
        groups = [
            _summary(2, True, 2.0, local_tau={"a": 2.0}),
            _summary(1, False, 1.0, local_tau={"b": 1.0}),
        ]
        estimate = combine_group_estimates(groups, m=2, c=3)
        assert "a" in estimate.local_counts
        assert "b" in estimate.local_counts

    def test_track_local_false_skips_local(self):
        groups = [_summary(2, True, 2.0, local_tau={"a": 2.0})]
        estimate = combine_group_estimates(groups, m=2, c=2, track_local=False)
        assert estimate.local_counts == {}

    def test_eta_tracked_recorded_in_metadata(self):
        groups = [_summary(2, False, 1.0)]
        tracked = combine_group_estimates(groups, m=2, c=2, eta_tracked=True)
        untracked = combine_group_estimates(groups, m=2, c=2, eta_tracked=False)
        unknown = combine_group_estimates(groups, m=2, c=2)
        assert tracked.metadata["eta_tracked"] == 1.0
        assert untracked.metadata["eta_tracked"] == 0.0
        assert "eta_tracked" not in unknown.metadata
