"""Tests for the REPT estimator (Algorithms 1 and 2)."""

import math
import statistics

import pytest

from repro.core.config import ReptConfig
from repro.core.rept import ReptEstimator
from repro.generators.planted import planted_clique_stream


class TestDegenerateExactCases:
    def test_m1_c1_is_exact(self, clique_stream):
        estimate = ReptEstimator(ReptConfig(m=1, c=1, seed=1)).run(clique_stream)
        assert estimate.global_count == pytest.approx(math.comb(12, 3))

    def test_m1_c1_local_exact(self, clique_stream):
        estimate = ReptEstimator(ReptConfig(m=1, c=1, seed=1)).run(clique_stream)
        for node in range(12):
            assert estimate.local_count(node) == pytest.approx(math.comb(11, 2))

    def test_m1_many_processors_still_exact(self, clique_stream):
        estimate = ReptEstimator(ReptConfig(m=1, c=4, seed=1)).run(clique_stream)
        assert estimate.global_count == pytest.approx(math.comb(12, 3))


class TestInterface:
    def test_with_params_constructor(self, triangle_stream):
        estimator = ReptEstimator.with_params(m=2, c=2, seed=3)
        estimate = estimator.run(triangle_stream)
        assert estimate.edges_processed == 3

    def test_self_loops_ignored(self):
        estimator = ReptEstimator(ReptConfig(m=1, c=1, seed=1))
        estimator.process_stream([(0, 0), (0, 1), (1, 2), (0, 2)])
        assert estimator.estimate().global_count == pytest.approx(1.0)

    def test_metadata_records_algorithm(self, triangle_stream):
        alg1 = ReptEstimator(ReptConfig(m=4, c=2, seed=1)).run(triangle_stream)
        alg2 = ReptEstimator(ReptConfig(m=2, c=5, seed=1)).run(triangle_stream)
        assert alg1.metadata["algorithm"] == 1.0
        assert alg2.metadata["algorithm"] == 2.0

    def test_describe(self):
        assert "REPT" in ReptEstimator(ReptConfig(m=4, c=2, seed=1)).describe()

    def test_edges_stored_fraction(self, medium_stream):
        """Per processor, roughly |E|/m edges are stored; with c = m the
        whole stream is partitioned so the total equals the distinct count."""
        estimator = ReptEstimator(ReptConfig(m=4, c=4, seed=2, track_local=False))
        estimator.process_stream(medium_stream)
        assert estimator.edges_stored == medium_stream.num_distinct_edges

    def test_partial_storage_for_c_less_than_m(self, medium_stream):
        estimator = ReptEstimator(ReptConfig(m=10, c=2, seed=2, track_local=False))
        estimator.process_stream(medium_stream)
        expected = medium_stream.num_distinct_edges * 2 / 10
        assert 0.7 * expected < estimator.edges_stored < 1.3 * expected

    def test_track_local_false_gives_empty_locals(self, clique_stream):
        estimate = ReptEstimator(ReptConfig(m=2, c=2, seed=1, track_local=False)).run(
            clique_stream
        )
        assert estimate.local_counts == {}

    def test_deterministic_given_seed(self, medium_stream):
        run1 = ReptEstimator(ReptConfig(m=5, c=5, seed=11, track_local=False)).run(medium_stream)
        run2 = ReptEstimator(ReptConfig(m=5, c=5, seed=11, track_local=False)).run(medium_stream)
        assert run1.global_count == run2.global_count

    def test_different_seeds_differ(self, medium_stream):
        run1 = ReptEstimator(ReptConfig(m=5, c=5, seed=1, track_local=False)).run(medium_stream)
        run2 = ReptEstimator(ReptConfig(m=5, c=5, seed=2, track_local=False)).run(medium_stream)
        assert run1.global_count != run2.global_count


class TestUnbiasednessAlgorithm1:
    """Statistical checks of E[τ̂] = τ (Theorem 3) for c <= m."""

    def _mean_estimate(self, stream, m, c, trials):
        estimates = [
            ReptEstimator(ReptConfig(m=m, c=c, seed=seed, track_local=False))
            .run(stream)
            .global_count
            for seed in range(trials)
        ]
        return statistics.mean(estimates), statistics.pstdev(estimates) / math.sqrt(trials)

    def test_unbiased_c_less_than_m(self):
        stream = planted_clique_stream(16, seed=1)
        truth = math.comb(16, 3)
        mean, stderr = self._mean_estimate(stream, m=4, c=2, trials=300)
        assert abs(mean - truth) < 4 * stderr + 1e-9

    def test_unbiased_c_equals_m(self):
        stream = planted_clique_stream(16, seed=1)
        truth = math.comb(16, 3)
        mean, stderr = self._mean_estimate(stream, m=3, c=3, trials=300)
        assert abs(mean - truth) < 4 * stderr + 1e-9

    def test_local_estimates_unbiased_on_average(self):
        stream = planted_clique_stream(14, seed=1)
        truth_local = math.comb(13, 2)
        totals = {}
        trials = 150
        for seed in range(trials):
            estimate = ReptEstimator(ReptConfig(m=3, c=3, seed=seed)).run(stream)
            for node in range(14):
                totals[node] = totals.get(node, 0.0) + estimate.local_count(node)
        mean_over_nodes = statistics.mean(value / trials for value in totals.values())
        assert abs(mean_over_nodes - truth_local) / truth_local < 0.1


class TestUnbiasednessAlgorithm2:
    def test_unbiased_exact_multiple(self):
        stream = planted_clique_stream(16, seed=1)
        truth = math.comb(16, 3)
        estimates = [
            ReptEstimator(ReptConfig(m=3, c=9, seed=seed, track_local=False))
            .run(stream)
            .global_count
            for seed in range(200)
        ]
        mean = statistics.mean(estimates)
        stderr = statistics.pstdev(estimates) / math.sqrt(len(estimates))
        assert abs(mean - truth) < 4 * stderr + 1e-9

    def test_partial_group_estimate_close_to_truth(self):
        """The Graybill-Deal combination uses plug-in variances, so exact
        unbiasedness is not guaranteed, but the mean should be within a few
        percent of the truth on an easy instance."""
        stream = planted_clique_stream(16, seed=1)
        truth = math.comb(16, 3)
        estimates = [
            ReptEstimator(ReptConfig(m=3, c=10, seed=seed, track_local=False))
            .run(stream)
            .global_count
            for seed in range(150)
        ]
        assert abs(statistics.mean(estimates) - truth) / truth < 0.05

    def test_metadata_exposes_sub_estimates(self, medium_stream):
        estimate = ReptEstimator(ReptConfig(m=3, c=10, seed=4, track_local=False)).run(
            medium_stream
        )
        assert "tau_hat_complete" in estimate.metadata
        assert "tau_hat_partial" in estimate.metadata
        assert "eta_hat" in estimate.metadata

    def test_local_estimates_present_for_algorithm2(self, clique_stream):
        estimate = ReptEstimator(ReptConfig(m=2, c=5, seed=4)).run(clique_stream)
        assert len(estimate.local_counts) > 0


class TestVarianceOrdering:
    def test_more_processors_reduce_variance(self):
        """Var(τ̂) decreases as c grows (with m fixed)."""
        stream = planted_clique_stream(16, seed=1)
        variances = {}
        for c in (1, 4):
            estimates = [
                ReptEstimator(ReptConfig(m=4, c=c, seed=seed, track_local=False))
                .run(stream)
                .global_count
                for seed in range(200)
            ]
            variances[c] = statistics.pvariance(estimates)
        assert variances[4] < variances[1]

    def test_rept_beats_independent_partitioning_on_covariance_heavy_graph(self):
        """On a 'book' graph (huge η) REPT at c = m has variance τ(m-1),
        while independent MASCOT instances keep the covariance term."""
        from repro.baselines.parallel import parallelize
        from repro.generators.planted import planted_triangles_stream

        stream = planted_triangles_stream(60, shared_edge=True)
        truth = 60.0
        m, c, trials = 4, 4, 120
        rept_estimates = [
            ReptEstimator(ReptConfig(m=m, c=c, seed=seed, track_local=False))
            .run(stream)
            .global_count
            for seed in range(trials)
        ]
        mascot_estimates = [
            parallelize("mascot", c, 1.0 / m, len(stream), seed=seed, track_local=False)
            .run(stream)
            .global_count
            for seed in range(trials)
        ]
        rept_mse = statistics.mean((e - truth) ** 2 for e in rept_estimates)
        mascot_mse = statistics.mean((e - truth) ** 2 for e in mascot_estimates)
        assert rept_mse < mascot_mse
