"""Tests for worker supervision in the chunked-process driver.

Faults are injected deterministically at the two pooled task sites
(``storing-worker``, ``counting-worker``); every scenario asserts the
estimate stays bit-identical to the serial reference — supervision changes
scheduling, never results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ReptConfig
import repro.core.parallel as parallel
from repro.core.parallel import (
    DEFAULT_SUPERVISION,
    SupervisionPolicy,
    run_rept,
    task_retry_delays,
)
from repro.durability.retry import RetryPolicy, call_with_retry
from repro.exceptions import ConfigurationError, WorkerFailedError
from repro.testing.faults import FaultPlan, FaultSpec, arm

CONFIG = ReptConfig(m=2, c=4, seed=23, track_local=True)


def _edges(n=400, nodes=30, seed=6):
    rng = np.random.default_rng(seed)
    cols = rng.integers(0, nodes, size=(n, 2))
    return [(int(u), int(v)) for u, v in cols]


EDGES = _edges()

#: Fast retries so fault scenarios don't sleep through real backoff.
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)


def _reference():
    return run_rept(EDGES, CONFIG, backend="serial")


def _chunked(supervision):
    return run_rept(
        EDGES,
        CONFIG,
        backend="chunked-process",
        max_workers=2,
        chunk_size=64,
        supervision=supervision,
    )


def _assert_same(candidate, reference):
    assert candidate.global_count == reference.global_count
    assert candidate.local_counts == reference.local_counts
    assert candidate.edges_stored == reference.edges_stored


class TestPolicyValidation:
    def test_defaults_are_sane(self):
        assert DEFAULT_SUPERVISION.allow_inline_fallback
        assert DEFAULT_SUPERVISION.worker_timeout is None

    def test_negative_restart_budget_rejected(self):
        with pytest.raises(ConfigurationError, match="max_pool_restarts"):
            SupervisionPolicy(max_pool_restarts=-1)

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ConfigurationError, match="worker_timeout"):
            SupervisionPolicy(worker_timeout=0.0)


class TestRetryPolicy:
    def test_delay_schedule_is_deterministic(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.1, seed=9)
        assert policy.delays() == policy.delays()

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay=1.0, backoff=4.0, max_delay=5.0, jitter=0.0
        )
        assert policy.delays() == [1.0, 4.0, 5.0, 5.0, 5.0]

    def test_reseeded_changes_jitter_only(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.1, seed=1)
        other = policy.reseeded(2)
        assert other.max_attempts == policy.max_attempts
        assert other.delays() != policy.delays()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=2.0)

    def test_call_with_retry_succeeds_after_failures(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise RuntimeError("transient")
            return "ok"

        observed = []
        result = call_with_retry(
            flaky,
            RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0),
            on_retry=lambda attempt, exc: observed.append(attempt),
            sleep=lambda _: None,
        )
        assert result == "ok"
        assert observed == [1, 2]

    def test_call_with_retry_exhausts_and_reraises(self):
        def always_fails():
            raise RuntimeError("permanent")

        with pytest.raises(RuntimeError, match="permanent"):
            call_with_retry(
                always_fails,
                RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0),
                sleep=lambda _: None,
            )

    def test_call_with_retry_ignores_foreign_exceptions(self):
        calls = []

        def fails_with_value_error():
            calls.append(1)
            raise ValueError("not retryable here")

        with pytest.raises(ValueError):
            call_with_retry(
                fails_with_value_error,
                RetryPolicy(max_attempts=5, base_delay=0.0),
                retry_on=(RuntimeError,),
                sleep=lambda _: None,
            )
        assert len(calls) == 1


class TestSupervisedExecution:
    def test_clean_run_reports_zero_events(self):
        reference = _reference()
        estimate = _chunked(SupervisionPolicy(retry=FAST_RETRY))
        _assert_same(estimate, reference)
        assert estimate.metadata["worker_retries"] == 0.0
        assert estimate.metadata["pool_restarts"] == 0.0
        assert estimate.metadata["degraded"] == 0.0

    def test_raising_worker_is_retried(self):
        reference = _reference()
        plan = FaultPlan(
            faults=(FaultSpec(site="counting-worker", match={"chunk": 1}),)
        )
        with arm(plan):
            estimate = _chunked(SupervisionPolicy(retry=FAST_RETRY))
        _assert_same(estimate, reference)
        assert estimate.metadata["worker_retries"] >= 1.0
        assert estimate.metadata["degraded"] == 0.0

    def test_storing_worker_faults_are_supervised_too(self):
        reference = _reference()
        plan = FaultPlan(
            faults=(FaultSpec(site="storing-worker", match={"chunk": 0}),)
        )
        with arm(plan):
            estimate = _chunked(SupervisionPolicy(retry=FAST_RETRY))
        _assert_same(estimate, reference)
        assert estimate.metadata["worker_retries"] >= 1.0

    def test_dying_worker_restarts_the_pool(self):
        reference = _reference()
        plan = FaultPlan(
            faults=(
                FaultSpec(site="counting-worker", match={"chunk": 2}, action="exit"),
            )
        )
        with arm(plan):
            estimate = _chunked(SupervisionPolicy(retry=FAST_RETRY))
        _assert_same(estimate, reference)
        assert estimate.metadata["pool_restarts"] >= 1.0

    def test_persistent_failure_degrades_to_inline(self):
        """All 3 pooled attempts of one task fail; its inline fallback runs.

        ``times`` equals the pooled attempt budget exactly, so the fault
        window closes right before the in-process fallback call — which
        would otherwise fire the same armed fault.
        """
        reference = _reference()
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    site="counting-worker",
                    match={"group": 0, "chunk": 1},
                    times=FAST_RETRY.max_attempts,
                ),
            )
        )
        with arm(plan):
            estimate = _chunked(SupervisionPolicy(retry=FAST_RETRY))
        _assert_same(estimate, reference)
        assert estimate.metadata["worker_retries"] == 2.0
        assert estimate.metadata["degraded"] == 1.0

    def test_fallback_disabled_raises_worker_failed(self):
        plan = FaultPlan(
            faults=(
                FaultSpec(site="counting-worker", match={"chunk": 1}, times=1000),
            )
        )
        with arm(plan):
            with pytest.raises(WorkerFailedError):
                _chunked(
                    SupervisionPolicy(retry=FAST_RETRY, allow_inline_fallback=False)
                )

    def test_hung_worker_times_out_and_restarts(self):
        reference = _reference()
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    site="counting-worker",
                    match={"chunk": 0},
                    action="hang",
                    delay_seconds=5.0,
                ),
            )
        )
        with arm(plan):
            estimate = _chunked(
                SupervisionPolicy(retry=FAST_RETRY, worker_timeout=1.0)
            )
        _assert_same(estimate, reference)
        assert estimate.metadata["pool_restarts"] >= 1.0


class TestRetryJitterDeterminism:
    """The backoff a retried task sleeps is a pure function of its key.

    Pins both retry paths — a retry within one pool, and a retry after a
    worker death forced a pool rebuild — against the published
    :func:`task_retry_delays` schedule.  ``time.sleep`` is recorded (not
    skipped: these delays are sub-millisecond only through the policy),
    so the assertion is on the exact jittered values.
    """

    #: Distinctive, jittered schedule: wrong derivations can't collide.
    PINNED_RETRY = RetryPolicy(
        max_attempts=3, base_delay=0.001, backoff=3.0, jitter=0.25, seed=17
    )

    def _record_sleeps(self, monkeypatch):
        slept = []
        real_sleep = parallel.time.sleep

        def recording_sleep(seconds):
            slept.append(seconds)
            real_sleep(0)  # yield, don't actually wait

        monkeypatch.setattr(parallel.time, "sleep", recording_sleep)
        return slept

    def test_schedule_is_pure_and_per_key(self):
        policy = SupervisionPolicy(retry=self.PINNED_RETRY)
        assert task_retry_delays(policy, (0, 1)) == task_retry_delays(
            policy, (0, 1)
        )
        assert task_retry_delays(policy, (0, 1)) != task_retry_delays(
            policy, (1, 0)
        )
        assert len(task_retry_delays(policy, (0, 1))) == 2

    def test_same_pool_retry_sleeps_the_pinned_delays(self, monkeypatch):
        slept = self._record_sleeps(monkeypatch)
        reference = _reference()
        policy = SupervisionPolicy(retry=self.PINNED_RETRY)
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    site="counting-worker", match={"group": 0, "chunk": 1},
                    times=2,
                ),
            )
        )
        with arm(plan):
            estimate = _chunked(policy)
        _assert_same(estimate, reference)
        expected = task_retry_delays(policy, (0, 1))
        assert slept == expected

    def test_post_rebuild_retry_resumes_the_same_schedule(self, monkeypatch):
        """raise → sleep d0 → worker death (rebuild) → raise → sleep d1.

        The rebuild itself must not sleep and must not restart the
        schedule: the second retry sleeps d1 of the original per-key
        derivation, exactly as if the pool had survived.
        """
        slept = self._record_sleeps(monkeypatch)
        reference = _reference()
        policy = SupervisionPolicy(retry=self.PINNED_RETRY)
        # A firing spec short-circuits the later ones, so each spec only
        # observes the calls its predecessors let through: the specs fire
        # strictly in order, one per matching call.
        match = {"group": 0, "chunk": 1}
        plan = FaultPlan(
            faults=(
                # 1st call: ordinary failure -> retry after d0
                FaultSpec(site="counting-worker", match=match, action="raise"),
                # 2nd call (the same-pool retry): kill the worker -> pool
                # rebuild resubmits the task, consuming no attempt
                FaultSpec(site="counting-worker", match=match, action="exit"),
                # 3rd call (post-rebuild): fail again -> the retry must
                # sleep d1 of the original schedule
                FaultSpec(site="counting-worker", match=match, action="raise"),
            )
        )
        with arm(plan):
            estimate = _chunked(policy)
        _assert_same(estimate, reference)
        assert estimate.metadata["pool_restarts"] >= 1.0
        expected = task_retry_delays(policy, (0, 1))
        assert slept == expected


class TestDegradedBitIdentity:
    def test_exhausted_restart_budget_completes_inline(self):
        """One task kills its worker on every pooled round; once the
        restart budget runs out the whole remainder completes inline.

        ``times=2`` covers exactly the two pooled rounds (initial + one
        restart), so the in-process inline execution is past the fault
        window — an unbounded ``exit`` fault would kill the test runner.
        """
        reference = _reference()
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    site="counting-worker",
                    match={"group": 0, "chunk": 2},
                    action="exit",
                    times=2,
                ),
            )
        )
        with arm(plan):
            estimate = _chunked(
                SupervisionPolicy(retry=FAST_RETRY, max_pool_restarts=1)
            )
        _assert_same(estimate, reference)
        assert estimate.metadata["degraded"] == 1.0
        assert estimate.metadata["pool_restarts"] == 2.0
