"""Tests for worker supervision in the chunked-process driver.

Faults are injected deterministically at the two pooled task sites
(``storing-worker``, ``counting-worker``); every scenario asserts the
estimate stays bit-identical to the serial reference — supervision changes
scheduling, never results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ReptConfig
from repro.core.parallel import (
    DEFAULT_SUPERVISION,
    SupervisionPolicy,
    run_rept,
)
from repro.durability.retry import RetryPolicy, call_with_retry
from repro.exceptions import ConfigurationError, WorkerFailedError
from repro.testing.faults import FaultPlan, FaultSpec, arm

CONFIG = ReptConfig(m=2, c=4, seed=23, track_local=True)


def _edges(n=400, nodes=30, seed=6):
    rng = np.random.default_rng(seed)
    cols = rng.integers(0, nodes, size=(n, 2))
    return [(int(u), int(v)) for u, v in cols]


EDGES = _edges()

#: Fast retries so fault scenarios don't sleep through real backoff.
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)


def _reference():
    return run_rept(EDGES, CONFIG, backend="serial")


def _chunked(supervision):
    return run_rept(
        EDGES,
        CONFIG,
        backend="chunked-process",
        max_workers=2,
        chunk_size=64,
        supervision=supervision,
    )


def _assert_same(candidate, reference):
    assert candidate.global_count == reference.global_count
    assert candidate.local_counts == reference.local_counts
    assert candidate.edges_stored == reference.edges_stored


class TestPolicyValidation:
    def test_defaults_are_sane(self):
        assert DEFAULT_SUPERVISION.allow_inline_fallback
        assert DEFAULT_SUPERVISION.worker_timeout is None

    def test_negative_restart_budget_rejected(self):
        with pytest.raises(ConfigurationError, match="max_pool_restarts"):
            SupervisionPolicy(max_pool_restarts=-1)

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ConfigurationError, match="worker_timeout"):
            SupervisionPolicy(worker_timeout=0.0)


class TestRetryPolicy:
    def test_delay_schedule_is_deterministic(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.1, seed=9)
        assert policy.delays() == policy.delays()

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay=1.0, backoff=4.0, max_delay=5.0, jitter=0.0
        )
        assert policy.delays() == [1.0, 4.0, 5.0, 5.0, 5.0]

    def test_reseeded_changes_jitter_only(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.1, seed=1)
        other = policy.reseeded(2)
        assert other.max_attempts == policy.max_attempts
        assert other.delays() != policy.delays()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=2.0)

    def test_call_with_retry_succeeds_after_failures(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise RuntimeError("transient")
            return "ok"

        observed = []
        result = call_with_retry(
            flaky,
            RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0),
            on_retry=lambda attempt, exc: observed.append(attempt),
            sleep=lambda _: None,
        )
        assert result == "ok"
        assert observed == [1, 2]

    def test_call_with_retry_exhausts_and_reraises(self):
        def always_fails():
            raise RuntimeError("permanent")

        with pytest.raises(RuntimeError, match="permanent"):
            call_with_retry(
                always_fails,
                RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0),
                sleep=lambda _: None,
            )

    def test_call_with_retry_ignores_foreign_exceptions(self):
        calls = []

        def fails_with_value_error():
            calls.append(1)
            raise ValueError("not retryable here")

        with pytest.raises(ValueError):
            call_with_retry(
                fails_with_value_error,
                RetryPolicy(max_attempts=5, base_delay=0.0),
                retry_on=(RuntimeError,),
                sleep=lambda _: None,
            )
        assert len(calls) == 1


class TestSupervisedExecution:
    def test_clean_run_reports_zero_events(self):
        reference = _reference()
        estimate = _chunked(SupervisionPolicy(retry=FAST_RETRY))
        _assert_same(estimate, reference)
        assert estimate.metadata["worker_retries"] == 0.0
        assert estimate.metadata["pool_restarts"] == 0.0
        assert estimate.metadata["degraded"] == 0.0

    def test_raising_worker_is_retried(self):
        reference = _reference()
        plan = FaultPlan(
            faults=(FaultSpec(site="counting-worker", match={"chunk": 1}),)
        )
        with arm(plan):
            estimate = _chunked(SupervisionPolicy(retry=FAST_RETRY))
        _assert_same(estimate, reference)
        assert estimate.metadata["worker_retries"] >= 1.0
        assert estimate.metadata["degraded"] == 0.0

    def test_storing_worker_faults_are_supervised_too(self):
        reference = _reference()
        plan = FaultPlan(
            faults=(FaultSpec(site="storing-worker", match={"chunk": 0}),)
        )
        with arm(plan):
            estimate = _chunked(SupervisionPolicy(retry=FAST_RETRY))
        _assert_same(estimate, reference)
        assert estimate.metadata["worker_retries"] >= 1.0

    def test_dying_worker_restarts_the_pool(self):
        reference = _reference()
        plan = FaultPlan(
            faults=(
                FaultSpec(site="counting-worker", match={"chunk": 2}, action="exit"),
            )
        )
        with arm(plan):
            estimate = _chunked(SupervisionPolicy(retry=FAST_RETRY))
        _assert_same(estimate, reference)
        assert estimate.metadata["pool_restarts"] >= 1.0

    def test_persistent_failure_degrades_to_inline(self):
        """All 3 pooled attempts of one task fail; its inline fallback runs.

        ``times`` equals the pooled attempt budget exactly, so the fault
        window closes right before the in-process fallback call — which
        would otherwise fire the same armed fault.
        """
        reference = _reference()
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    site="counting-worker",
                    match={"group": 0, "chunk": 1},
                    times=FAST_RETRY.max_attempts,
                ),
            )
        )
        with arm(plan):
            estimate = _chunked(SupervisionPolicy(retry=FAST_RETRY))
        _assert_same(estimate, reference)
        assert estimate.metadata["worker_retries"] == 2.0
        assert estimate.metadata["degraded"] == 1.0

    def test_fallback_disabled_raises_worker_failed(self):
        plan = FaultPlan(
            faults=(
                FaultSpec(site="counting-worker", match={"chunk": 1}, times=1000),
            )
        )
        with arm(plan):
            with pytest.raises(WorkerFailedError):
                _chunked(
                    SupervisionPolicy(retry=FAST_RETRY, allow_inline_fallback=False)
                )

    def test_hung_worker_times_out_and_restarts(self):
        reference = _reference()
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    site="counting-worker",
                    match={"chunk": 0},
                    action="hang",
                    delay_seconds=5.0,
                ),
            )
        )
        with arm(plan):
            estimate = _chunked(
                SupervisionPolicy(retry=FAST_RETRY, worker_timeout=1.0)
            )
        _assert_same(estimate, reference)
        assert estimate.metadata["pool_restarts"] >= 1.0


class TestDegradedBitIdentity:
    def test_exhausted_restart_budget_completes_inline(self):
        """One task kills its worker on every pooled round; once the
        restart budget runs out the whole remainder completes inline.

        ``times=2`` covers exactly the two pooled rounds (initial + one
        restart), so the in-process inline execution is past the fault
        window — an unbounded ``exit`` fault would kill the test runner.
        """
        reference = _reference()
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    site="counting-worker",
                    match={"group": 0, "chunk": 2},
                    action="exit",
                    times=2,
                ),
            )
        )
        with arm(plan):
            estimate = _chunked(
                SupervisionPolicy(retry=FAST_RETRY, max_pool_restarts=1)
            )
        _assert_same(estimate, reference)
        assert estimate.metadata["degraded"] == 1.0
        assert estimate.metadata["pool_restarts"] == 2.0
