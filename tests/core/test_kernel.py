"""Tests for the compiled ingestion kernel: resolution, guards, parity.

The kernel contract (see :mod:`repro.core.kernel`) is strict bit-identity:
every provider advances a group's array state exactly like the pure-Python
:class:`~repro.core.state.ProcessorGroup`, so estimates, local counters,
η metadata and stored-edge sets never depend on which kernel ran.  These
tests cover the resolution rules (``auto`` fallback, explicit-request
errors, the ``REPRO_KERNEL`` environment override), equality over an
(m, c) grid that includes partial groups and η tracking, and the
snapshot/merge paths crossing the kernel boundary.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.core import kernel as kernel_mod
from repro.core.config import ReptConfig
from repro.core.kernel import (
    KERNEL_CHOICES,
    MAX_NATIVE_GROUP_SIZE,
    available_native_providers,
    provider_available,
    reset_provider_cache,
    resolve_kernel,
)
from repro.core.rept import ReptEstimator
from repro.core.state import GroupStateSet
from repro.exceptions import ConfigurationError

SEED = 20240808

#: The compiled-C provider must be buildable in CI (a C compiler is part of
#: the test image); every parity test below rides on it.
needs_cc = pytest.mark.skipif(
    not provider_available("cc"), reason="no C compiler available"
)


def _stream(num_records=400, num_nodes=14, seed=SEED):
    """Duplicate-heavy random stream including self-loops."""
    rng = random.Random(seed)
    return [
        (rng.randrange(num_nodes), rng.randrange(num_nodes))
        for _ in range(num_records)
    ]


@pytest.fixture
def clean_env(monkeypatch):
    """Clear REPRO_KERNEL and the provider memo around a test."""
    monkeypatch.delenv("REPRO_KERNEL", raising=False)
    reset_provider_cache()
    yield monkeypatch
    reset_provider_cache()


class TestResolveKernel:
    def test_rejects_unknown_choice(self):
        with pytest.raises(ConfigurationError):
            resolve_kernel("fortran")

    def test_python_is_passthrough(self):
        assert resolve_kernel("python") == "python"
        assert resolve_kernel("python", 1000) == "python"

    def test_auto_falls_back_for_wide_groups(self, clean_env):
        assert resolve_kernel("auto", MAX_NATIVE_GROUP_SIZE + 1) == "python"

    @pytest.mark.parametrize("requested", ["native", "cc", "numba"])
    def test_explicit_native_rejects_wide_groups(self, requested, clean_env):
        with pytest.raises(ConfigurationError):
            resolve_kernel(requested, MAX_NATIVE_GROUP_SIZE + 1)

    @needs_cc
    def test_auto_prefers_cc(self, clean_env):
        assert resolve_kernel("auto", 8) == "cc"
        assert resolve_kernel("native", 8) == "cc"
        assert resolve_kernel("cc", 8) == "cc"

    def test_env_python_disables_native(self, clean_env):
        clean_env.setenv("REPRO_KERNEL", "python")
        reset_provider_cache()
        assert available_native_providers() == []
        assert resolve_kernel("auto", 8) == "python"
        with pytest.raises(ConfigurationError):
            resolve_kernel("native", 8)
        with pytest.raises(ConfigurationError):
            resolve_kernel("cc", 8)

    @needs_cc
    def test_env_restricts_discovery_to_one_provider(self, clean_env):
        clean_env.setenv("REPRO_KERNEL", "cc")
        reset_provider_cache()
        assert available_native_providers() == ["cc"]
        assert resolve_kernel("auto", 8) == "cc"

    def test_unavailable_provider_is_explicit_error(self, clean_env):
        """An explicit request for a provider this environment cannot build
        fails loudly instead of silently running the Python loop."""
        clean_env.setenv("REPRO_KERNEL", "python")
        reset_provider_cache()
        with pytest.raises(ConfigurationError):
            resolve_kernel("numba", 8)

    def test_config_validates_kernel_choice(self):
        with pytest.raises(Exception):
            ReptConfig(m=4, c=8, seed=1, kernel="fortran")
        for choice in KERNEL_CHOICES:
            assert ReptConfig(m=4, c=8, seed=1, kernel=choice).kernel == choice


class TestNumbaImpersonation:
    """The numba provider slot accepts any batch-loop callable, so the
    numba code path is testable without numba installed: the reference
    loop has the exact signature the jitted function would."""

    def test_reference_loop_as_numba_provider(self, clean_env):
        clean_env.setitem(kernel_mod._PROVIDERS, "numba", kernel_mod._ingest_batch)
        assert provider_available("numba")
        assert resolve_kernel("numba", 8) == "numba"
        edges = _stream()
        config = ReptConfig(m=3, c=8, seed=SEED, track_local=True)
        reference = GroupStateSet(config, kernel="python")
        impersonated = GroupStateSet(config, kernel="numba")
        n_ref = reference.process_edges(edges)
        n_imp = impersonated.process_edges(edges)
        assert impersonated.kernel == "numba"
        assert n_ref == n_imp
        _assert_identical(reference.estimate(n_ref), impersonated.estimate(n_imp))


#: (m, c) grid: full single group, Algorithm 2 with an even split, a
#: partial trailing group (forces η tracking), and a wide-m config.
PARITY_GRID = [(1, 1), (4, 3), (3, 8), (4, 10), (8, 16), (2, 7)]


def _estimates(config, edges, kernel, batch_size=None):
    estimator = ReptEstimator(dataclasses.replace(config, kernel=kernel))
    if batch_size is None:
        estimator.process_stream(edges)
    else:
        estimator.process_stream(edges, batch_size=batch_size)
    return estimator.estimate()


def _assert_identical(left, right):
    assert left.global_count == right.global_count
    assert left.local_counts == right.local_counts
    assert left.edges_stored == right.edges_stored
    assert left.edges_processed == right.edges_processed
    assert left.metadata.get("eta_hat") == right.metadata.get("eta_hat")


@needs_cc
class TestKernelParity:
    @pytest.mark.parametrize("m,c", PARITY_GRID)
    @pytest.mark.parametrize("track_local", [True, False])
    def test_batched_ingestion_matches_python(self, m, c, track_local, clean_env):
        config = ReptConfig(m=m, c=c, seed=SEED, track_local=track_local)
        edges = _stream()
        python = _estimates(config, edges, "python", batch_size=64)
        native = _estimates(config, edges, "native", batch_size=64)
        assert native.metadata["kernel"] == "cc"
        assert python.metadata["kernel"] == "python"
        _assert_identical(python, native)

    @pytest.mark.parametrize("m,c", PARITY_GRID)
    def test_per_edge_ingestion_matches_python(self, m, c, clean_env):
        config = ReptConfig(m=m, c=c, seed=SEED, track_local=True)
        edges = _stream(num_records=250)
        python = _estimates(config, edges, "python")
        native = _estimates(config, edges, "native")
        _assert_identical(python, native)

    def test_group_summaries_match(self, clean_env):
        config = ReptConfig(m=3, c=8, seed=SEED, track_local=True)
        edges = _stream()
        python = GroupStateSet(config, kernel="python")
        native = GroupStateSet(config, kernel="native")
        python.process_edges(edges)
        native.process_edges(edges)
        assert python.summaries() == native.summaries()
        for p_group, n_group in zip(python.groups, native.groups):
            assert sorted(p_group.stored_edges()) == sorted(n_group.stored_edges())
            assert p_group.tau_values() == n_group.tau_values()
            assert p_group.eta_values() == n_group.eta_values()

    def test_snapshot_roundtrip_across_kernels(self, clean_env):
        """State snapshotted mid-stream under one kernel restores into the
        other and finishes bit-identically — snapshots are portable."""
        config = ReptConfig(m=3, c=8, seed=SEED, track_local=True)
        edges = _stream()
        half = len(edges) // 2
        for first_kernel, second_kernel in [
            ("python", "native"),
            ("native", "python"),
        ]:
            first = GroupStateSet(config, kernel=first_kernel)
            n_first = first.process_edges(edges[:half])
            second = GroupStateSet(
                config, interner=first.interner, kernel=second_kernel
            )
            for group, snapshot in zip(second.groups, first.snapshot()):
                group.restore(snapshot)
            second.seen = set(first.seen)
            n_second = second.process_edges(edges[half:])
            reference = GroupStateSet(config, kernel="python")
            n_ref = reference.process_edges(edges)
            _assert_identical(
                reference.estimate(n_ref), second.estimate(n_first + n_second)
            )

    def test_merge_snapshots_across_kernels(self, clean_env):
        """Chunked-style merge: a python-built snapshot folds into a
        native accumulator exactly like into a python one."""
        config = ReptConfig(m=4, c=10, seed=SEED, track_local=True)
        edges = _stream()
        half = len(edges) // 2
        shared = GroupStateSet(config, kernel="python")
        accum_native = GroupStateSet(
            config, interner=shared.interner, kernel="native"
        )
        accum_python = GroupStateSet(
            config, interner=shared.interner, kernel="python"
        )
        for chunk in (edges[:half], edges[half:]):
            worker = GroupStateSet(
                config, interner=shared.interner, kernel="python"
            )
            worker.seen = shared.seen
            worker.process_edges(chunk)
            snapshots = worker.snapshot()
            accum_native.merge_snapshots(snapshots)
            accum_python.merge_snapshots(snapshots)
        assert accum_python.summaries() == accum_native.summaries()

    def test_estimate_metadata_records_resolved_label(self, clean_env):
        config = ReptConfig(m=3, c=8, seed=SEED, track_local=False, kernel="auto")
        estimator = ReptEstimator(config)
        estimator.process_edges(_stream(num_records=50))
        assert estimator.estimate().metadata["kernel"] == "cc"


class TestProviderParity:
    """Parity of every *buildable* provider — in a numba-equipped
    environment this exercises the jitted kernel, in a compiler-equipped
    one the C kernel; CI's kernel-parity matrix covers both."""

    @pytest.mark.parametrize("provider", ["cc", "numba"])
    @pytest.mark.parametrize("m,c", [(3, 8), (4, 10), (8, 16)])
    def test_provider_matches_python(self, provider, m, c, clean_env):
        if not provider_available(provider):
            pytest.skip(f"provider {provider!r} not buildable here")
        config = ReptConfig(m=m, c=c, seed=SEED, track_local=True)
        edges = _stream()
        python = _estimates(config, edges, "python", batch_size=64)
        native = _estimates(config, edges, provider, batch_size=64)
        assert native.metadata["kernel"] == provider
        _assert_identical(python, native)

    @pytest.mark.parametrize("provider", ["cc", "numba"])
    def test_provider_per_edge_matches_python(self, provider, clean_env):
        if not provider_available(provider):
            pytest.skip(f"provider {provider!r} not buildable here")
        config = ReptConfig(m=3, c=8, seed=SEED, track_local=True)
        edges = _stream(num_records=250)
        _assert_identical(
            _estimates(config, edges, "python"),
            _estimates(config, edges, provider),
        )


class TestPairsCache:
    """Regression: ``process_edges(seen=None)`` derives the stored-pairs
    set at most once per group; later batches extend it incrementally."""

    @pytest.mark.parametrize("kernel", ["python", "auto"])
    def test_no_rederivation_on_later_batches(self, kernel, monkeypatch, clean_env):
        config = ReptConfig(m=3, c=8, seed=SEED, track_local=False)
        state = GroupStateSet(config, kernel=kernel)
        calls = {"n": 0}
        for group in state.groups:
            original = group._derive_stored_pairs

            def counted(_orig=original):
                calls["n"] += 1
                return _orig()

            monkeypatch.setattr(group, "_derive_stored_pairs", counted)
        edges = _stream(num_records=200)
        for group in state.groups:
            group.process_edges(edges[:100], seen=None)
        first_round = calls["n"]
        assert first_round <= len(state.groups)
        for group in state.groups:
            group.process_edges(edges[100:], seen=None)
        assert calls["n"] == first_round

    def test_cache_invalidated_by_restore(self, clean_env):
        config = ReptConfig(m=3, c=8, seed=SEED, track_local=False)
        state = GroupStateSet(config, kernel="python")
        edges = _stream(num_records=120)
        for group in state.groups:
            group.process_edges(edges, seen=None)
        snapshots = state.snapshot()
        for group, snapshot in zip(state.groups, snapshots):
            group.restore(snapshot)
            assert group._pairs_cache is None
            # The cache rebuilds lazily and matches the stored edges.
            pairs = group._stored_pairs()
            interner = group.interner
            stored = set()
            for _slot, u, v in group.stored_edges():
                iu, iv = interner.id_of(u), interner.id_of(v)
                stored.add((iu, iv) if iu < iv else (iv, iu))
            assert pairs == stored
