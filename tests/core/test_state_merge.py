"""Tests for the mergeable chunk state of ProcessorCounters / ProcessorGroup.

The merge contract (see :mod:`repro.core.state`): a group advanced over a
later chunk, seeded with the earlier chunks' stored-edge index and zeroed
counters, folds into the earlier state *exactly* — every counter, including
the η pair counters, matches an uninterrupted run bit for bit.
"""

import pytest

from repro.core.state import ProcessorCounters, ProcessorGroup
from repro.generators.planted import planted_triangles_stream
from repro.generators.random_graphs import barabasi_albert_stream
from repro.hashing import make_hash_function
from repro.types import canonical_edge


def make_group(m=3, group_size=2, seed=42, track_local=True, track_eta=True):
    return ProcessorGroup(
        hash_function=make_hash_function("splitmix", buckets=m, seed=seed),
        group_size=group_size,
        m=m,
        track_local=track_local,
        track_eta=track_eta,
    )


def advance(group, edges):
    for u, v in edges:
        if u != v:
            group.process_edge(u, v)
    return group


def stored_records(edges, m, group_size, seed, seen):
    """Reference storing pass: distinct stored (slot, u, v) of one chunk."""
    hash_function = make_hash_function("splitmix", buckets=m, seed=seed)
    out = []
    for u, v in edges:
        if u == v:
            continue
        slot = hash_function.bucket(u, v)
        if slot >= group_size:
            continue
        key = canonical_edge(u, v)
        if key in seen:
            continue
        seen.add(key)
        out.append((slot, key[0], key[1]))
    return out


def positive_entries(mapping):
    """Drop zero-valued entries: serial and chunked runs may differ only in
    which zero-count local entries were ever touched."""
    return {key: value for key, value in mapping.items() if value}


def assert_same_state(reference, merged):
    """Exact-equality check through the raw-keyed snapshot boundary.

    Groups intern node ids internally in first-appearance order, so two
    groups that saw the same edges through different schedules hold
    differently-keyed dicts; the externalized snapshot is the
    representation the merge contract is defined over.
    """
    for ref, got in zip(
        reference.snapshot()["processors"], merged.snapshot()["processors"]
    ):
        assert got["tau"] == ref["tau"]
        assert got["eta"] == ref["eta"]
        assert got["edges_stored"] == ref["edges_stored"]
        assert got["edge_triangles"] == ref["edge_triangles"]
        assert {node: set(neigh) for node, neigh in got["adjacency"].items()} == {
            node: set(neigh) for node, neigh in ref["adjacency"].items()
        }
        assert positive_entries(got["tau_local"]) == positive_entries(ref["tau_local"])
        assert positive_entries(got["eta_local"]) == positive_entries(ref["eta_local"])


def run_chunked(edges, boundaries, **group_kwargs):
    """Advance a group over ``edges`` in chunks via seed_adjacency + merge."""
    bounds = [0] + list(boundaries) + [len(edges)]
    chunks = [edges[a:b] for a, b in zip(bounds, bounds[1:])]
    merged = make_group(**group_kwargs)
    seen = set()
    prefix = []
    for chunk in chunks:
        worker = make_group(**group_kwargs)
        worker.seed_adjacency(prefix)
        advance(worker, chunk)
        merged.merge(worker)
        prefix = prefix + stored_records(
            chunk, merged.m, merged.group_size, 42, seen
        )
    return merged


class TestSnapshotRestore:
    def test_roundtrip_resumes_exactly(self):
        edges = barabasi_albert_stream(80, 3, triad_closure=0.5, seed=9).edges()
        reference = advance(make_group(), edges)

        interrupted = advance(make_group(), edges[:100])
        resumed = make_group()
        resumed.restore(interrupted.snapshot())
        advance(resumed, edges[100:])
        assert_same_state(reference, resumed)

    def test_snapshot_is_a_copy(self):
        group = advance(make_group(), [(0, 1), (1, 2), (0, 2)])
        snapshot = group.snapshot()
        advance(group, [(2, 3), (3, 0)])
        fresh = make_group()
        fresh.restore(snapshot)
        assert fresh.total_edges_stored() <= 3

    def test_restore_rejects_shape_mismatch(self):
        snapshot = make_group(group_size=2).snapshot()
        with pytest.raises(ValueError):
            make_group(group_size=1).restore(snapshot)

    def test_counters_snapshot_roundtrip(self):
        counters = ProcessorCounters()
        counters.store_edge(1, 2, 0)
        counters.tau = 7
        restored = ProcessorCounters.restore(counters.snapshot())
        assert restored.tau == 7
        assert restored.adjacency == counters.adjacency
        assert restored.adjacency is not counters.adjacency


class TestChunkMerge:
    def test_two_chunk_merge_matches_serial(self):
        edges = barabasi_albert_stream(100, 3, triad_closure=0.5, seed=3).edges()
        reference = advance(make_group(), edges)
        merged = run_chunked(edges, [len(edges) // 2])
        assert_same_state(reference, merged)

    def test_many_chunks_with_duplicates_match_serial(self):
        base = barabasi_albert_stream(100, 3, triad_closure=0.5, seed=5).edges()
        edges = base + base[:60]  # re-arrivals exercise already_stored across chunks
        reference = advance(make_group(), edges)
        merged = run_chunked(edges, [40, 170, 260])
        assert_same_state(reference, merged)

    def test_eta_heavy_stream_matches_serial(self):
        # Six triangles sharing one edge: maximal pair-counter coupling, so
        # the cross-chunk η correction carries real weight.
        edges = planted_triangles_stream(6, shared_edge=True).edges()
        reference = advance(make_group(m=2, group_size=2), edges)
        merged = run_chunked(edges, [5], m=2, group_size=2)
        assert_same_state(reference, merged)

    def test_merge_without_eta_tracking(self):
        edges = barabasi_albert_stream(60, 3, triad_closure=0.5, seed=7).edges()
        kwargs = dict(track_eta=False, track_local=False)
        reference = advance(make_group(**kwargs), edges)
        merged = run_chunked(edges, [70], **kwargs)
        assert_same_state(reference, merged)

    def test_merge_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            make_group(group_size=2).merge(make_group(group_size=1))

    def test_seed_adjacency_rejects_invalid_slot(self):
        with pytest.raises(ValueError):
            make_group(group_size=1).seed_adjacency([(1, 0, 1)])

    def test_seed_adjacency_leaves_counters_zero(self):
        group = make_group()
        group.seed_adjacency([(0, 1, 2), (1, 2, 3)])
        assert group.tau_values() == [0, 0]
        assert group.total_edges_stored() == 0
        assert group.stored_neighbors(0, 1) == {2}
        assert group.stored_neighbors(1, 2) == {3}
        assert group.stored_neighbors(0, 99) == set()
