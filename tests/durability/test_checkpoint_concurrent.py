"""Concurrent-writer tests for :class:`CheckpointManager`.

Two (or more) processes checkpointing the same directory race for
generation numbers.  The O_EXCL-style ``os.link`` publish must ensure
every generation has exactly one writer — the loser restages under the
next free number — so recovery always sees a coherent, untorn newest
checkpoint no matter how the saves interleaved.
"""

from __future__ import annotations

import multiprocessing
import threading

from repro.durability.checkpoint import CheckpointManager


def _writer(directory, tag, saves, results):
    manager = CheckpointManager(directory, keep=10_000)
    for index in range(saves):
        saved = manager.save(
            {"writer": tag, "index": index}, stream_offset=index,
            meta={"writer": tag},
        )
        results.put((tag, index, saved.generation))


def _run_writers(tmp_path, writers, saves):
    ctx = (
        multiprocessing.get_context("fork")
        if "fork" in multiprocessing.get_all_start_methods()
        else multiprocessing.get_context()
    )
    results = ctx.Queue()
    procs = [
        ctx.Process(target=_writer, args=(tmp_path, tag, saves, results))
        for tag in range(writers)
    ]
    for proc in procs:
        proc.start()
    collected = []
    for _ in range(writers * saves):
        collected.append(results.get(timeout=60))
    for proc in procs:
        proc.join(timeout=60)
        assert proc.exitcode == 0
    return collected


class TestConcurrentWriters:
    def test_generations_are_never_shared(self, tmp_path):
        collected = _run_writers(tmp_path, writers=3, saves=6)
        generations = [generation for _, _, generation in collected]
        # every save won a distinct generation — no torn double-writes
        assert len(set(generations)) == len(generations) == 18
        # and the sequence is dense: losers restaged, nothing was skipped
        assert sorted(generations) == list(range(18))

    def test_recover_sees_a_coherent_newest(self, tmp_path):
        collected = _run_writers(tmp_path, writers=3, saves=6)
        by_generation = {
            generation: (tag, index) for tag, index, generation in collected
        }
        report = CheckpointManager(tmp_path, keep=10_000).recover()
        assert report.skipped == []
        newest = report.checkpoint
        assert newest is not None
        assert newest.generation == max(by_generation)
        tag, index = by_generation[newest.generation]
        # the payload is exactly what that generation's *winner* staged —
        # headers, checksums and body all from one writer
        assert newest.payload == {"writer": tag, "index": index}
        assert newest.stream_offset == index
        assert newest.meta == {"writer": tag}

    def test_interleaved_threads_share_one_directory(self, tmp_path):
        # Same property in-process: threads race the same os.link claim.
        managers = [CheckpointManager(tmp_path, keep=10_000) for _ in range(4)]
        generations = []
        lock = threading.Lock()

        def worker(manager, tag):
            for index in range(5):
                saved = manager.save({"t": tag, "i": index}, index)
                with lock:
                    generations.append(saved.generation)

        threads = [
            threading.Thread(target=worker, args=(manager, tag))
            for tag, manager in enumerate(managers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(generations) == list(range(20))

    def test_loser_restages_with_fresh_header(self, tmp_path):
        # Deterministic two-manager race: both believe generation 0 is
        # free; the second save must detect the published file and restage
        # as generation 1 with its own header/payload intact.
        first = CheckpointManager(tmp_path)
        second = CheckpointManager(tmp_path)
        second._claim_generation()  # both now primed for generation 0
        a = first.save({"who": "first"}, 1)
        b = second.save({"who": "second"}, 2)
        assert a.generation == 0
        assert b.generation == 1
        report = CheckpointManager(tmp_path).recover()
        assert report.checkpoint.payload == {"who": "second"}
        assert report.checkpoint.stream_offset == 2
        assert report.skipped == []
