"""Tests for the integrity-checked checkpoint files."""

from __future__ import annotations

import json

import pytest

from repro.durability.checkpoint import (
    MANIFEST_FILE,
    CheckpointManager,
    _checkpoint_name,
)
from repro.exceptions import CheckpointError, RecoveryError
from repro.testing.faults import (
    FaultPlan,
    FaultSpec,
    arm,
    corrupt_file,
    truncate_file,
)


class TestSaveAndRecover:
    def test_round_trip(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        saved = manager.save({"tau": [1, 2, 3]}, 42, meta={"engine": "rept"})
        assert saved.generation == 0
        assert saved.path.is_file()

        report = CheckpointManager(tmp_path).recover()
        assert report.checkpoint is not None
        assert report.checkpoint.payload == {"tau": [1, 2, 3]}
        assert report.checkpoint.stream_offset == 42
        assert report.checkpoint.meta == {"engine": "rept"}
        assert report.skipped == []

    def test_generations_increment_and_newest_wins(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        for offset in (10, 20, 30):
            manager.save({"offset": offset}, offset)
        assert manager.generations() == [0, 1, 2]
        report = manager.recover()
        assert report.checkpoint.generation == 2
        assert report.checkpoint.payload == {"offset": 30}

    def test_generation_counter_survives_restart(self, tmp_path):
        CheckpointManager(tmp_path).save("a", 1)
        saved = CheckpointManager(tmp_path).save("b", 2)
        assert saved.generation == 1

    def test_empty_directory_recovers_fresh(self, tmp_path):
        report = CheckpointManager(tmp_path / "nothing").recover()
        assert report.checkpoint is None
        assert report.examined == 0

    def test_strict_recovery_raises_on_fresh(self, tmp_path):
        with pytest.raises(RecoveryError, match="no valid checkpoint"):
            CheckpointManager(tmp_path).recover(strict=True)

    def test_retention_prunes_oldest(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=2)
        for offset in range(5):
            manager.save(offset, offset)
        assert manager.generations() == [3, 4]

    def test_manifest_tracks_generations(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=2)
        for offset in range(3):
            manager.save(offset, offset)
        manifest = json.loads((tmp_path / MANIFEST_FILE).read_text())
        assert manifest["generations"] == [1, 2]

    def test_recovery_never_trusts_the_manifest(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save("state", 7)
        (tmp_path / MANIFEST_FILE).write_text('{"generations": [0, 99]}')
        report = CheckpointManager(tmp_path).recover()
        assert report.checkpoint.payload == "state"


class TestValidationErrors:
    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(CheckpointError, match="keep"):
            CheckpointManager(tmp_path, keep=0)

    def test_negative_offset_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="stream_offset"):
            CheckpointManager(tmp_path).save("x", -1)

    def test_unpicklable_payload_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="not picklable"):
            CheckpointManager(tmp_path).save(lambda: None, 0)

    def test_injected_write_failure_becomes_checkpoint_error(self, tmp_path):
        plan = FaultPlan(
            faults=(FaultSpec(site="checkpoint-write", action="io-error"),)
        )
        manager = CheckpointManager(tmp_path / "ckpt")
        with arm(plan):
            with pytest.raises(CheckpointError, match="failed to write"):
                manager.save("x", 0)
        # the failed save claimed generation 0 but wrote nothing
        assert manager.generations() == []


class TestDamageRecovery:
    def _manager_with_history(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=5)
        for offset in (100, 200, 300):
            manager.save({"offset": offset}, offset)
        return manager

    def test_torn_newest_falls_back_one_generation(self, tmp_path):
        manager = self._manager_with_history(tmp_path)
        newest = tmp_path / _checkpoint_name(2)
        truncate_file(newest, newest.stat().st_size - 5)
        report = CheckpointManager(tmp_path).recover()
        assert report.checkpoint.generation == 1
        assert report.checkpoint.stream_offset == 200
        assert report.skipped[0][0] == newest.name
        assert "torn payload" in report.skipped[0][1]

    def test_corrupt_payload_detected_by_sha256(self, tmp_path):
        manager = self._manager_with_history(tmp_path)
        newest = tmp_path / _checkpoint_name(2)
        blob = newest.read_bytes()
        # flip one byte inside the payload (past magic + header line)
        header_end = blob.index(b"\n", len(b"REPTCKPT1\n")) + 1
        damaged = bytearray(blob)
        damaged[header_end + 3] ^= 0xFF
        newest.write_bytes(bytes(damaged))
        report = CheckpointManager(tmp_path).recover()
        assert report.checkpoint.generation == 1
        assert "sha256" in report.skipped[0][1]

    def test_bad_magic_detected(self, tmp_path):
        self._manager_with_history(tmp_path)
        newest = tmp_path / _checkpoint_name(2)
        newest.write_bytes(b"NOTACKPT" + newest.read_bytes()[8:])
        report = CheckpointManager(tmp_path).recover()
        assert report.checkpoint.generation == 1
        assert "magic" in report.skipped[0][1]

    def test_corrupt_header_detected(self, tmp_path):
        self._manager_with_history(tmp_path)
        newest = tmp_path / _checkpoint_name(2)
        blob = newest.read_bytes()
        damaged = blob[: len(b"REPTCKPT1\n")] + b"{not json" + blob[20:]
        newest.write_bytes(damaged)
        report = CheckpointManager(tmp_path).recover()
        assert report.checkpoint.generation == 1

    def test_every_generation_damaged_recovers_fresh(self, tmp_path):
        manager = self._manager_with_history(tmp_path)
        for generation in manager.generations():
            corrupt_file(tmp_path / _checkpoint_name(generation), seed=generation)
        report = CheckpointManager(tmp_path).recover()
        assert report.checkpoint is None
        assert report.examined == 3
        with pytest.raises(RecoveryError):
            CheckpointManager(tmp_path).recover(strict=True)

    def test_stale_tmp_files_are_ignored(self, tmp_path):
        manager = self._manager_with_history(tmp_path)
        (tmp_path / ".ckpt-stale.tmp").write_bytes(b"half a checkpoint")
        report = manager.recover()
        assert report.checkpoint.generation == 2
        assert report.examined == 1
