"""Crash-then-resume tests for the windowed-monitor durable driver."""

from __future__ import annotations

import pytest

from repro.core.config import ReptConfig
from repro.durability import run_monitor_durable
from repro.exceptions import RecoveryError
from repro.streaming.monitor import WindowedTriangleMonitor
from repro.testing.faults import FaultPlan, FaultSpec, InjectedFault, arm
from repro.utils.rng import as_random_source

CONFIG = ReptConfig(m=4, c=6, seed=11, track_local=True)


def _records(n=2000, nodes=25, span=60.0, seed=9):
    """Timestamped ``(u, v, time)`` records with duplicates and self-loops."""
    rng = as_random_source(seed)
    records, time = [], 0.0
    for _ in range(n):
        time += float(rng.random()) * (span / n) * 2.0
        records.append((int(rng.integers(0, nodes)), int(rng.integers(0, nodes)), time))
    return records


RECORDS = _records()


def _make_monitor():
    return WindowedTriangleMonitor(
        12.0, slide_seconds=6.0, pane_seconds=3.0, config=CONFIG
    )


def _rows(results):
    """Comparable view of window results (full estimate, not a summary)."""
    return [
        (
            r.index,
            r.start,
            r.end,
            r.records,
            r.complete,
            r.estimate.global_count,
            r.estimate.local_counts,
            r.estimate.edges_processed,
            r.estimate.edges_stored,
        )
        for r in results
    ]


def _reference_rows():
    monitor = _make_monitor()
    results = monitor.ingest(RECORDS)
    results.extend(monitor.flush())
    return _rows(results)


def _kill_plan(kill_segment):
    return FaultPlan(
        faults=(FaultSpec(site="monitor-segment", skip=kill_segment),)
    )


class TestMonitorDurable:
    def test_uninterrupted_matches_one_shot(self, tmp_path):
        results, report = run_monitor_durable(
            _make_monitor, RECORDS, tmp_path, checkpoint_every=400
        )
        assert report.checkpoint is None
        assert _rows(results) == _reference_rows()

    @pytest.mark.parametrize("kill_segment", [1, 3])
    def test_killed_then_resumed_matches_one_shot(self, tmp_path, kill_segment):
        with arm(_kill_plan(kill_segment)):
            with pytest.raises(InjectedFault):
                run_monitor_durable(
                    _make_monitor, RECORDS, tmp_path, checkpoint_every=400
                )
        results, report = run_monitor_durable(
            _make_monitor, RECORDS, tmp_path, checkpoint_every=400
        )
        assert report.checkpoint is not None
        assert report.checkpoint.stream_offset == kill_segment * 400
        assert _rows(results) == _reference_rows()

    def test_pre_crash_windows_come_from_the_checkpoint(self, tmp_path):
        """Windows sealed before the crash are returned without re-sealing."""
        with arm(_kill_plan(4)):
            with pytest.raises(InjectedFault):
                run_monitor_durable(
                    _make_monitor, RECORDS, tmp_path, checkpoint_every=400
                )
        # resume over a source whose pre-checkpoint records are vandalised:
        # replay must skip them by offset, never re-ingest them
        vandalised = [(0, 0, 0.0)] * 1600 + RECORDS[1600:]
        results, report = run_monitor_durable(
            _make_monitor, vandalised, tmp_path, checkpoint_every=400
        )
        assert report.checkpoint.stream_offset == 1600
        assert _rows(results) == _reference_rows()

    def test_no_flush_omits_open_windows(self, tmp_path):
        results, _ = run_monitor_durable(
            _make_monitor, RECORDS, tmp_path, checkpoint_every=400, flush=False
        )
        flushed = _reference_rows()
        assert _rows(results) == flushed[: len(results)]
        assert len(results) < len(flushed)

    def test_wrong_monitor_class_is_rejected(self, tmp_path):
        run_monitor_durable(
            _make_monitor, RECORDS[:400], tmp_path, checkpoint_every=200
        )
        class OtherMonitor(WindowedTriangleMonitor):
            pass
        with pytest.raises(RecoveryError, match="incompatible"):
            run_monitor_durable(
                lambda: OtherMonitor(
                    12.0, slide_seconds=6.0, pane_seconds=3.0, config=CONFIG
                ),
                RECORDS,
                tmp_path,
                checkpoint_every=200,
            )

    def test_checkpoint_every_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="checkpoint_every"):
            run_monitor_durable(_make_monitor, RECORDS, tmp_path, checkpoint_every=0)
