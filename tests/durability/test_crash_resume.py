"""Crash-then-resume tests: recovered runs are bit-identical to uninterrupted ones.

The durability contract under test (see :mod:`repro.durability.runner`): a
run killed at *any* segment boundary — by an exception, an I/O failure, or
genuine process death — and resumed from its checkpoint directory produces
exactly the estimates of the run that was never interrupted.  Exact
equality throughout, never approximate.
"""

from __future__ import annotations

import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.exact import ExactStreamingCounter
from repro.baselines.triest import TriestImprEstimator
from repro.core.config import ReptConfig
from repro.core.parallel import run_rept
from repro.durability import run_estimator_durable, run_rept_durable
from repro.durability.checkpoint import CheckpointManager
from repro.exceptions import RecoveryError
from repro.testing.faults import (
    EXIT_STATUS,
    PLAN_ENV,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    arm,
    truncate_file,
)

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")


def _edges(n=600, nodes=40, seed=3):
    """Deterministic duplicate- and self-loop-bearing edge list."""
    rng = np.random.default_rng(seed)
    cols = rng.integers(0, nodes, size=(n, 2))
    return [(int(u), int(v)) for u, v in cols]


EDGES = _edges()


def _assert_same_estimate(candidate, reference):
    assert candidate.global_count == reference.global_count
    assert candidate.local_counts == reference.local_counts
    assert candidate.edges_processed == reference.edges_processed
    assert candidate.edges_stored == reference.edges_stored


def _kill_plan(site, kill_segment, action="raise"):
    return FaultPlan(faults=(FaultSpec(site=site, skip=kill_segment, action=action),))


class TestReptDurable:
    @pytest.mark.parametrize("m,c", [(1, 1), (2, 4), (4, 6), (4, 8)])
    def test_uninterrupted_durable_matches_serial(self, tmp_path, m, c):
        config = ReptConfig(m=m, c=c, seed=17, track_local=True)
        reference = run_rept(EDGES, config, backend="serial")
        estimate, report = run_rept_durable(
            EDGES, config, tmp_path, checkpoint_every=150
        )
        _assert_same_estimate(estimate, reference)
        assert report.checkpoint is None  # fresh start

    @pytest.mark.parametrize("m,c", [(2, 4), (4, 6)])
    def test_killed_then_resumed_matches_serial(self, tmp_path, m, c):
        config = ReptConfig(m=m, c=c, seed=17, track_local=True)
        reference = run_rept(EDGES, config, backend="serial")
        with arm(_kill_plan("rept-segment", kill_segment=2)):
            with pytest.raises(InjectedFault):
                run_rept_durable(EDGES, config, tmp_path, checkpoint_every=100)
        # two checkpoints exist; the resumed run replays from the second
        estimate, report = run_rept_durable(
            EDGES, config, tmp_path, checkpoint_every=100
        )
        assert report.checkpoint is not None
        assert report.checkpoint.stream_offset == 200
        _assert_same_estimate(estimate, reference)

    def test_chunked_process_durable_matches_serial(self, tmp_path):
        config = ReptConfig(m=2, c=4, seed=17, track_local=True)
        reference = run_rept(EDGES, config, backend="serial")
        estimate, _ = run_rept_durable(
            EDGES,
            config,
            tmp_path,
            checkpoint_every=200,
            use_processes=True,
            max_workers=2,
            chunk_size=64,
        )
        _assert_same_estimate(estimate, reference)

    def test_chunked_process_killed_then_resumed_matches_serial(self, tmp_path):
        """Kill mid-stream under the pooled backend, resume under it too."""
        config = ReptConfig(m=2, c=4, seed=17, track_local=True)
        reference = run_rept(EDGES, config, backend="serial")
        kwargs = dict(
            checkpoint_every=150, use_processes=True, max_workers=2, chunk_size=64
        )
        with arm(_kill_plan("rept-segment", kill_segment=1)):
            with pytest.raises(InjectedFault):
                run_rept_durable(EDGES, config, tmp_path, **kwargs)
        estimate, report = run_rept_durable(EDGES, config, tmp_path, **kwargs)
        assert report.checkpoint is not None
        assert report.checkpoint.stream_offset == 150
        _assert_same_estimate(estimate, reference)

    def test_torn_checkpoint_recovers_from_previous_generation(self, tmp_path):
        config = ReptConfig(m=2, c=4, seed=17, track_local=True)
        reference = run_rept(EDGES, config, backend="serial")
        with arm(_kill_plan("rept-segment", kill_segment=3)):
            with pytest.raises(InjectedFault):
                run_rept_durable(EDGES, config, tmp_path, checkpoint_every=100)
        newest = sorted(tmp_path.glob("ckpt-*.ckpt"))[-1]
        truncate_file(newest, newest.stat().st_size - 7)
        estimate, report = run_rept_durable(
            EDGES, config, tmp_path, checkpoint_every=100
        )
        assert report.skipped  # the torn file was examined and rejected
        assert report.checkpoint.stream_offset == 200
        _assert_same_estimate(estimate, reference)

    def test_incompatible_config_is_rejected(self, tmp_path):
        config = ReptConfig(m=2, c=4, seed=17, track_local=True)
        run_rept_durable(EDGES, config, tmp_path, checkpoint_every=300)
        other = ReptConfig(m=4, c=4, seed=17, track_local=True)
        with pytest.raises(RecoveryError, match="incompatible"):
            run_rept_durable(EDGES, other, tmp_path, checkpoint_every=300)

    def test_resume_false_ignores_checkpoints(self, tmp_path):
        config = ReptConfig(m=2, c=4, seed=17, track_local=True)
        reference = run_rept(EDGES, config, backend="serial")
        run_rept_durable(EDGES[:300], config, tmp_path, checkpoint_every=100)
        estimate, report = run_rept_durable(
            EDGES, config, tmp_path, checkpoint_every=100, resume=False
        )
        assert report.checkpoint is None
        _assert_same_estimate(estimate, reference)

    def test_checkpoint_every_must_be_positive(self, tmp_path):
        config = ReptConfig(m=2, c=4, seed=17)
        with pytest.raises(ValueError, match="checkpoint_every"):
            run_rept_durable(EDGES, config, tmp_path, checkpoint_every=0)

    def test_driver_process_death_then_resume(self, tmp_path):
        """The child dies via os._exit (kill -9 semantics); the parent resumes."""
        config = ReptConfig(m=2, c=4, seed=17, track_local=True)
        reference = run_rept(EDGES, config, backend="serial")
        checkpoint_dir = tmp_path / "ckpt"
        plan_dir = tmp_path / "plan"
        _kill_plan("rept-segment", kill_segment=2, action="exit").write(plan_dir)
        script = (
            "import numpy as np\n"
            "from repro.core.config import ReptConfig\n"
            "from repro.durability import run_rept_durable\n"
            "rng = np.random.default_rng(3)\n"
            "cols = rng.integers(0, 40, size=(600, 2))\n"
            "edges = [(int(u), int(v)) for u, v in cols]\n"
            "config = ReptConfig(m=2, c=4, seed=17, track_local=True)\n"
            f"run_rept_durable(edges, config, {str(checkpoint_dir)!r}, "
            "checkpoint_every=100)\n"
        )
        child = subprocess.run(
            [sys.executable, "-c", script],
            env={
                "PATH": "/usr/bin:/bin",
                "PYTHONPATH": SRC_DIR,
                PLAN_ENV: str(plan_dir),
            },
        )
        assert child.returncode == EXIT_STATUS
        report = CheckpointManager(checkpoint_dir).recover()
        assert report.checkpoint is not None  # the child left durable state
        estimate, report = run_rept_durable(
            EDGES, config, checkpoint_dir, checkpoint_every=100
        )
        assert report.checkpoint.stream_offset == 200
        _assert_same_estimate(estimate, reference)


class TestGridProperty:
    @given(
        m=st.sampled_from([1, 2, 4]),
        c=st.sampled_from([1, 4, 6]),
        seed=st.integers(min_value=0, max_value=2**16),
        checkpoint_every=st.integers(min_value=50, max_value=250),
        kill_segment=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=12, deadline=None)
    def test_kill_and_resume_is_bit_identical_over_grid(
        self, m, c, seed, checkpoint_every, kill_segment
    ):
        config = ReptConfig(m=m, c=c, seed=seed, track_local=True)
        reference = run_rept(EDGES, config, backend="serial")
        with tempfile.TemporaryDirectory() as checkpoint_dir:
            with arm(_kill_plan("rept-segment", kill_segment)):
                try:
                    run_rept_durable(
                        EDGES, config, checkpoint_dir,
                        checkpoint_every=checkpoint_every,
                    )
                except InjectedFault:
                    pass  # killed mid-stream; state is on disk
            estimate, _ = run_rept_durable(
                EDGES, config, checkpoint_dir, checkpoint_every=checkpoint_every
            )
        _assert_same_estimate(estimate, reference)


class TestEstimatorDurable:
    def test_exact_counter_killed_then_resumed(self, tmp_path):
        reference = ExactStreamingCounter()
        reference.process_edges(EDGES)
        with arm(_kill_plan("estimator-segment", kill_segment=1)):
            with pytest.raises(InjectedFault):
                run_estimator_durable(
                    ExactStreamingCounter, EDGES, tmp_path, checkpoint_every=150
                )
        estimator, report = run_estimator_durable(
            ExactStreamingCounter, EDGES, tmp_path, checkpoint_every=150
        )
        assert report.checkpoint is not None
        _assert_same_estimate(estimator.estimate(), reference.estimate())

    def test_triest_resumes_its_rng_mid_sequence(self, tmp_path):
        """The reservoir's coin flips continue exactly where the crash left them."""
        factory = lambda: TriestImprEstimator(budget=150, seed=5, track_local=True)
        reference = factory()
        reference.process_edges(EDGES)
        with arm(_kill_plan("estimator-segment", kill_segment=2)):
            with pytest.raises(InjectedFault):
                run_estimator_durable(factory, EDGES, tmp_path, checkpoint_every=100)
        estimator, _ = run_estimator_durable(
            factory, EDGES, tmp_path, checkpoint_every=100
        )
        _assert_same_estimate(estimator.estimate(), reference.estimate())

    def test_wrong_estimator_class_is_rejected(self, tmp_path):
        run_estimator_durable(
            ExactStreamingCounter, EDGES[:200], tmp_path, checkpoint_every=100
        )
        with pytest.raises(RecoveryError, match="incompatible"):
            run_estimator_durable(
                lambda: TriestImprEstimator(budget=150, seed=5),
                EDGES,
                tmp_path,
                checkpoint_every=100,
            )
