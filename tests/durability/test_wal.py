"""Tests for the bounded per-shard batch WAL."""

from __future__ import annotations

import pytest

from repro.durability.wal import BatchWAL, WalEntry


class TestAppend:
    def test_appends_and_spans(self):
        wal = BatchWAL(capacity=4)
        wal.append(1, [(0, 1)])
        wal.append(2, [(1, 2)])
        assert wal.last_seq == 2
        assert wal.spans() == (1, 2)
        assert len(wal) == 2

    def test_seq_must_strictly_increase(self):
        wal = BatchWAL()
        wal.append(3, [])
        with pytest.raises(ValueError, match="strictly increasing"):
            wal.append(3, [])
        with pytest.raises(ValueError, match="strictly increasing"):
            wal.append(2, [])

    def test_sparse_numbering_is_detected_on_replay(self):
        # append only enforces monotonicity, but entries_after assumes the
        # coordinator's dense numbering — a gap reads as a torn suffix.
        wal = BatchWAL()
        wal.append(1, ["a"])
        wal.append(5, ["b"])
        with pytest.raises(LookupError):
            wal.entries_after(1)
        assert [e.seq for e in wal.entries_after(4)] == [5]


class TestEntriesAfter:
    def test_suffix_from_midpoint(self):
        wal = BatchWAL()
        for seq in range(1, 6):
            wal.append(seq, [seq])
        suffix = wal.entries_after(2)
        assert [e.seq for e in suffix] == [3, 4, 5]
        assert all(isinstance(e, WalEntry) for e in suffix)

    def test_suffix_from_last_is_empty(self):
        wal = BatchWAL()
        wal.append(1, [])
        wal.append(2, [])
        assert wal.entries_after(2) == []

    def test_missing_prefix_raises(self):
        wal = BatchWAL()
        for seq in range(1, 6):
            wal.append(seq, [seq])
        wal.truncate_through(3)
        # seq 2 was truncated away: replaying "after 1" would silently skip
        # batches 2..3, so the WAL must refuse.
        with pytest.raises(LookupError, match="no longer retains"):
            wal.entries_after(1)
        # but "after 3" is still fully retained
        assert [e.seq for e in wal.entries_after(3)] == [4, 5]

    def test_empty_wal_after_zero(self):
        wal = BatchWAL()
        assert wal.entries_after(0) == []


class TestTruncate:
    def test_truncate_through_drops_prefix(self):
        wal = BatchWAL()
        for seq in range(1, 6):
            wal.append(seq, [seq])
        wal.truncate_through(3)
        assert wal.spans() == (4, 5)
        wal.truncate_through(10)
        assert len(wal) == 0
        assert wal.spans() == (0, 0)

    def test_truncate_is_idempotent(self):
        wal = BatchWAL()
        wal.append(1, [])
        wal.truncate_through(1)
        wal.truncate_through(1)
        assert len(wal) == 0
        # last_seq survives truncation so monotonicity is still enforced
        assert wal.last_seq == 1
        with pytest.raises(ValueError):
            wal.append(1, [])


class TestCapacity:
    def test_over_capacity_flag(self):
        wal = BatchWAL(capacity=3)
        for seq in range(1, 4):
            wal.append(seq, [])
        assert not wal.over_capacity
        wal.append(4, [])
        assert wal.over_capacity
        wal.truncate_through(1)
        assert not wal.over_capacity

    def test_capacity_is_soft_not_lossy(self):
        # over_capacity is a signal to the coordinator to snapshot, never
        # a silent drop: every appended entry stays replayable.
        wal = BatchWAL(capacity=2)
        for seq in range(1, 10):
            wal.append(seq, [seq])
        assert [e.seq for e in wal.entries_after(0)] == list(range(1, 10))

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            BatchWAL(capacity=0)
