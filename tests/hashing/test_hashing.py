"""Tests for the edge-partition hash families."""

import collections

import numpy as np
import pytest

from repro.hashing import (
    HashFamily,
    SplitMixEdgeHash,
    TabulationEdgeHash,
    edge_key_array,
    make_hash_family,
    make_hash_function,
    node_key_array,
    splitmix64,
    splitmix64_array,
    stable_node_key,
)


class TestSplitmix64:
    def test_deterministic(self):
        assert splitmix64(12345) == splitmix64(12345)

    def test_avalanche_changes_output(self):
        assert splitmix64(1) != splitmix64(2)

    def test_output_is_64_bit(self):
        assert 0 <= splitmix64(2**63 + 17) < 2**64


@pytest.mark.parametrize("hash_cls", [SplitMixEdgeHash, TabulationEdgeHash])
class TestEdgeHashFunctions:
    def test_symmetric_in_endpoints(self, hash_cls):
        h = hash_cls(16, seed=1)
        for u, v in [(1, 2), (5, 100), ("a", "b")]:
            assert h.bucket(u, v) == h.bucket(v, u)

    def test_range(self, hash_cls):
        h = hash_cls(7, seed=2)
        buckets = {h.bucket(i, i + 1) for i in range(200)}
        assert buckets <= set(range(7))

    def test_deterministic_given_seed(self, hash_cls):
        h1 = hash_cls(32, seed=9)
        h2 = hash_cls(32, seed=9)
        assert [h1.bucket(i, i + 1) for i in range(50)] == [
            h2.bucket(i, i + 1) for i in range(50)
        ]

    def test_different_seeds_disagree_somewhere(self, hash_cls):
        h1 = hash_cls(32, seed=1)
        h2 = hash_cls(32, seed=2)
        values1 = [h1.bucket(i, i + 1) for i in range(100)]
        values2 = [h2.bucket(i, i + 1) for i in range(100)]
        assert values1 != values2

    def test_roughly_uniform(self, hash_cls):
        m = 10
        h = hash_cls(m, seed=3)
        counts = collections.Counter(h.bucket(i, j) for i in range(60) for j in range(i + 1, 60))
        total = sum(counts.values())
        expected = total / m
        for bucket in range(m):
            assert counts[bucket] > 0.5 * expected
            assert counts[bucket] < 1.5 * expected

    def test_string_nodes_supported(self, hash_cls):
        h = hash_cls(8, seed=4)
        assert 0 <= h.bucket("alice", "bob") < 8

    def test_callable_interface(self, hash_cls):
        h = hash_cls(8, seed=4)
        assert h(3, 4) == h.bucket(3, 4)

    def test_invalid_bucket_count_raises(self, hash_cls):
        with pytest.raises(ValueError):
            hash_cls(0, seed=1)


class TestHashFamily:
    def test_make_family_size_and_buckets(self):
        family = make_hash_family("splitmix", buckets=5, seed=1, count=3)
        assert len(family) == 3
        assert family.buckets == 5

    def test_family_members_are_independent(self):
        family = make_hash_family("splitmix", buckets=64, seed=1, count=2)
        values0 = [family[0].bucket(i, i + 1) for i in range(200)]
        values1 = [family[1].bucket(i, i + 1) for i in range(200)]
        assert values0 != values1

    def test_family_rejects_mixed_buckets(self):
        with pytest.raises(ValueError):
            HashFamily([SplitMixEdgeHash(4, 1), SplitMixEdgeHash(8, 1)])

    def test_family_requires_members(self):
        with pytest.raises(ValueError):
            HashFamily([])

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            make_hash_family("md5", buckets=4)
        with pytest.raises(ValueError):
            make_hash_function("md5", buckets=4)

    def test_make_hash_function_deterministic_for_seed(self):
        h1 = make_hash_function("tabulation", 16, seed=77)
        h2 = make_hash_function("tabulation", 16, seed=77)
        assert [h1.bucket(i, 2 * i + 1) for i in range(64)] == [
            h2.bucket(i, 2 * i + 1) for i in range(64)
        ]

    def test_family_iteration(self):
        family = make_hash_family("tabulation", buckets=4, seed=2, count=2)
        assert len(list(iter(family))) == 2


class TestVectorizedHashing:
    """The vectorized batch entry points must match the scalar path exactly."""

    # int, negative, huge, string and mixed-type endpoints all exercised.
    US = [1, 5, "alpha", 9, 3, "b", 2**70, -4, 0, 7]
    VS = [2, 5_000_000, "beta", "9", 10, 1, 7, 11, "zero", 7_000_000_000]

    @pytest.mark.parametrize("kind", ["splitmix", "tabulation"])
    @pytest.mark.parametrize("buckets", [1, 7, 16, 1024])
    def test_bucket_many_matches_scalar(self, kind, buckets):
        h = make_hash_function(kind, buckets=buckets, seed=42)
        scalar = [h.bucket(u, v) for u, v in zip(self.US, self.VS)]
        vectorized = h.bucket_many(self.US, self.VS)
        assert vectorized.tolist() == scalar

    @pytest.mark.parametrize("kind", ["splitmix", "tabulation"])
    def test_bucket_from_keys_matches_scalar(self, kind):
        h = make_hash_function(kind, buckets=13, seed=7)
        keys = np.array(
            [h._edge_key(u, v) for u, v in zip(self.US, self.VS)], dtype=np.uint64
        )
        scalar = [h.bucket(u, v) for u, v in zip(self.US, self.VS)]
        assert h.bucket_from_keys(keys).tolist() == scalar

    def test_bucket_many_rejects_length_mismatch(self):
        h = make_hash_function("splitmix", buckets=4, seed=1)
        with pytest.raises(ValueError):
            h.bucket_many([1, 2], [3])

    def test_splitmix64_array_matches_scalar(self):
        values = [0, 1, 12345, 2**63, 2**64 - 1]
        array = splitmix64_array(np.array(values, dtype=np.uint64))
        assert array.tolist() == [splitmix64(value) for value in values]

    def test_node_key_array_matches_scalar(self):
        nodes = [0, -1, "x", 2**70, True]
        keys = node_key_array(nodes)
        assert keys.dtype == np.uint64
        assert keys.tolist() == [stable_node_key(node) % 2**64 for node in nodes]

    def test_edge_key_array_wraps_like_scalar(self):
        h = make_hash_function("splitmix", buckets=8, seed=0)
        first = [stable_node_key(1) % 2**64, stable_node_key(2**70) % 2**64]
        second = [stable_node_key(2) % 2**64, stable_node_key("x") % 2**64]
        keys = edge_key_array(first, second)
        # Spot-check the uint64 wraparound against Python big-int masking.
        for index in range(2):
            expected = (first[index] * 0x9E3779B97F4A7C15 + second[index]) % 2**64
            assert int(keys[index]) == expected
