"""Tests for the local-count error aggregation."""

import pytest

from repro.metrics.local_errors import local_nrmse, summarize_local_trials


class TestLocalNrmse:
    def test_perfect_estimates_give_zero(self):
        truth = {1: 5.0, 2: 3.0}
        trials = [dict(truth), dict(truth)]
        assert local_nrmse(trials, truth) == 0.0

    def test_missing_nodes_treated_as_zero_estimate(self):
        truth = {1: 4.0}
        summary = summarize_local_trials([{}], truth)
        # error 4, sqrt(MSE)=4, divided by truth+1=5
        assert summary.nrmse == pytest.approx(0.8)
        assert summary.mean_abs_error == pytest.approx(4.0)

    def test_zero_truth_nodes_handled(self):
        truth = {1: 0.0}
        assert local_nrmse([{1: 2.0}], truth) == pytest.approx(2.0)

    def test_average_over_nodes(self):
        truth = {1: 1.0, 2: 3.0}
        trials = [{1: 1.0, 2: 7.0}]
        # node 1 error 0; node 2: sqrt(16)/4 = 1 -> mean 0.5
        assert local_nrmse(trials, truth) == pytest.approx(0.5)

    def test_multiple_trials_reduce_to_mse(self):
        truth = {1: 2.0}
        trials = [{1: 0.0}, {1: 4.0}]
        # MSE = (4 + 4)/2 = 4 -> sqrt = 2 -> / 3
        assert local_nrmse(trials, truth) == pytest.approx(2.0 / 3.0)

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            summarize_local_trials([], {1: 1.0})
        with pytest.raises(ValueError):
            summarize_local_trials([{1: 1.0}], {})

    def test_summary_counts(self):
        summary = summarize_local_trials([{1: 1.0, 2: 2.0}], {1: 1.0, 2: 2.0})
        assert summary.num_nodes == 2
        assert summary.num_trials == 1
