"""Tests for runtime measurement and the operation-count model."""

import pytest

from repro.baselines.exact import ExactStreamingCounter
from repro.baselines.mascot import MascotEstimator
from repro.metrics.runtime import (
    OperationCosts,
    OperationCountingGraph,
    measure_runtime,
    time_callable,
)


class TestMeasureRuntime:
    def test_measures_and_returns_estimate(self, clique_stream):
        measurement = measure_runtime(ExactStreamingCounter(), clique_stream)
        assert measurement.seconds >= 0
        assert measurement.edges_processed == len(clique_stream)
        assert measurement.estimate.global_count == 220
        assert measurement.method == "exact"

    def test_edges_per_second(self, clique_stream):
        measurement = measure_runtime(MascotEstimator(0.5, seed=1), clique_stream)
        assert measurement.edges_per_second >= 0

    def test_time_callable(self):
        assert time_callable(lambda: sum(range(1000))) >= 0


class TestOperationCountingGraph:
    def test_counts_intersections_and_insertions(self):
        graph = OperationCountingGraph()
        graph.add_edge(1, 2)
        graph.add_edge(2, 3)
        graph.common_neighbors(1, 3)
        assert graph.counters["edges_inserted"] == 2
        assert graph.counters["common_neighbor_calls"] == 1
        assert graph.counters["set_elements_scanned"] >= 1

    def test_duplicate_insertion_not_counted(self):
        graph = OperationCountingGraph()
        graph.add_edge(1, 2)
        graph.add_edge(2, 1)
        assert graph.counters["edges_inserted"] == 1

    def test_removal_counted(self):
        graph = OperationCountingGraph([(1, 2)])
        graph.remove_edge(1, 2)
        graph.remove_edge(1, 2)
        assert graph.counters["edges_removed"] == 1

    def test_can_replace_estimator_storage(self, clique_stream):
        estimator = MascotEstimator(1.0, seed=1, track_local=False)
        estimator._sampled = OperationCountingGraph()
        estimator.process_stream(clique_stream)
        assert estimator._sampled.counters["common_neighbor_calls"] == len(clique_stream)


class TestOperationCosts:
    def test_total_aggregation(self):
        costs = OperationCosts(scan_cost=1.0, insert_cost=2.0, remove_cost=3.0, weight_update_cost=4.0)
        counters = {
            "set_elements_scanned": 10,
            "common_neighbor_calls": 5,
            "edges_inserted": 2,
            "edges_removed": 1,
        }
        assert costs.total(counters, weight_updates=2) == pytest.approx(
            1 * 10 + 1 * 5 + 2 * 2 + 3 * 1 + 4 * 2
        )

    def test_defaults_reflect_cost_ordering(self):
        costs = OperationCosts()
        assert costs.weight_update_cost > costs.insert_cost
