"""Tests for the global-count error metrics."""

import math

import pytest

from repro.metrics.errors import (
    bias,
    empirical_variance,
    mean_squared_error,
    normalized_rmse,
    summarize_trials,
)


class TestPointMetrics:
    def test_mse_of_exact_estimates_is_zero(self):
        assert mean_squared_error([10.0, 10.0], 10.0) == 0.0

    def test_mse_value(self):
        assert mean_squared_error([8.0, 12.0], 10.0) == pytest.approx(4.0)

    def test_bias(self):
        assert bias([8.0, 12.0], 10.0) == 0.0
        assert bias([12.0, 12.0], 10.0) == 2.0

    def test_empirical_variance(self):
        assert empirical_variance([1.0, 3.0]) == pytest.approx(1.0)
        assert empirical_variance([5.0]) == 0.0

    def test_nrmse(self):
        assert normalized_rmse([8.0, 12.0], 10.0) == pytest.approx(0.2)

    def test_nrmse_zero_truth_rejected(self):
        with pytest.raises(ValueError):
            normalized_rmse([1.0], 0.0)

    def test_empty_estimates_rejected(self):
        with pytest.raises(ValueError):
            mean_squared_error([], 1.0)
        with pytest.raises(ValueError):
            bias([], 1.0)
        with pytest.raises(ValueError):
            empirical_variance([])


class TestTrialSummary:
    def test_mse_decomposition(self):
        estimates = [9.0, 11.0, 13.0]
        summary = summarize_trials(estimates, 10.0)
        assert summary.num_trials == 3
        assert summary.mean_estimate == pytest.approx(11.0)
        assert summary.mse == pytest.approx(summary.variance + summary.bias**2)
        assert summary.nrmse == pytest.approx(math.sqrt(summary.mse) / 10.0)

    def test_truth_recorded(self):
        assert summarize_trials([1.0], 2.0).truth == 2.0
