"""Tests for the interval-based triangle anomaly detector."""

import pytest

from repro.applications.anomaly import TriangleAnomalyDetector
from repro.baselines.exact import ExactStreamingCounter
from repro.generators.traffic import TrafficTraceSpec, synthetic_packet_trace


def _trace(anomaly_intervals=(3,), seed=5):
    spec = TrafficTraceSpec(
        num_hosts=400,
        duration_seconds=3000.0,
        background_rate=2.0,
        anomaly_intervals=anomaly_intervals,
        anomaly_clique_size=14,
        window_seconds=300.0,
    )
    return synthetic_packet_trace(spec, seed=seed), spec


class TestTriangleAnomalyDetector:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TriangleAnomalyDetector(window_seconds=0)
        with pytest.raises(ValueError):
            TriangleAnomalyDetector(window_seconds=10, sensitivity=0)

    def test_empty_input_gives_no_reports(self):
        detector = TriangleAnomalyDetector(window_seconds=60)
        assert detector.analyze([]) == []
        assert detector.anomalous_intervals([]) == []

    def test_detects_planted_burst(self):
        records, spec = _trace(anomaly_intervals=(3,))
        detector = TriangleAnomalyDetector(window_seconds=spec.window_seconds, seed=1)
        flagged = detector.anomalous_intervals(records)
        assert flagged == [3]

    def test_detects_multiple_bursts(self):
        records, spec = _trace(anomaly_intervals=(2, 7), seed=8)
        detector = TriangleAnomalyDetector(window_seconds=spec.window_seconds, seed=2)
        assert detector.anomalous_intervals(records) == [2, 7]

    def test_quiet_trace_flags_nothing(self):
        records, spec = _trace(anomaly_intervals=(), seed=6)
        detector = TriangleAnomalyDetector(window_seconds=spec.window_seconds, seed=3)
        assert detector.anomalous_intervals(records) == []

    def test_reports_have_expected_fields(self):
        records, spec = _trace()
        detector = TriangleAnomalyDetector(window_seconds=spec.window_seconds, seed=1)
        reports = detector.analyze(records)
        assert len(reports) == len(set(report.index for report in reports))
        for report in reports:
            assert report.end > report.start
            assert report.edge_count >= 0
            assert report.triangle_estimate >= 0

    def test_custom_estimator_factory(self):
        """The detector also works with the exact counter (small windows)."""
        records, spec = _trace()
        detector = TriangleAnomalyDetector(
            window_seconds=spec.window_seconds,
            estimator_factory=lambda seed: ExactStreamingCounter(),
            seed=4,
        )
        assert detector.anomalous_intervals(records) == [3]
