"""Tests for clustering-coefficient estimation and node rankings."""

import math

import pytest

from repro.applications.clustering import estimate_global_clustering, estimate_local_clustering
from repro.applications.ranking import rank_by_local_count, suspicious_low_clustering_nodes
from repro.baselines.base import TriangleEstimate
from repro.baselines.exact import ExactStreamingCounter
from repro.core import ReptConfig, ReptEstimator
from repro.graph.triangles import count_wedges, global_clustering_coefficient


class TestGlobalClustering:
    def test_exact_estimate_matches_offline_transitivity(self, clique_stream):
        graph = clique_stream.to_graph()
        estimate = ExactStreamingCounter().run(clique_stream)
        value = estimate_global_clustering(estimate, count_wedges(graph))
        assert value == pytest.approx(global_clustering_coefficient(graph))

    def test_zero_wedges(self):
        estimate = TriangleEstimate(global_count=0.0)
        assert estimate_global_clustering(estimate, 0) == 0.0

    def test_clamped_to_unit_interval(self):
        estimate = TriangleEstimate(global_count=1e9)
        assert estimate_global_clustering(estimate, 10) == 1.0

    def test_approximate_estimate_close_on_medium_graph(self, medium_stream, medium_stats):
        graph = medium_stream.to_graph()
        estimator = ReptEstimator(ReptConfig(m=4, c=4, seed=3, track_local=False))
        estimate = estimator.run(medium_stream)
        approx = estimate_global_clustering(estimate, count_wedges(graph))
        exact = global_clustering_coefficient(graph)
        assert abs(approx - exact) < 0.3 * exact + 0.01


class TestLocalClustering:
    def test_exact_clique_coefficients_are_one(self, clique_stream):
        graph = clique_stream.to_graph()
        estimate = ExactStreamingCounter().run(clique_stream)
        coefficients = estimate_local_clustering(estimate, graph.degree_sequence())
        assert all(value == pytest.approx(1.0) for value in coefficients.values())

    def test_low_degree_nodes_skipped(self):
        estimate = TriangleEstimate(global_count=0.0, local_counts={})
        coefficients = estimate_local_clustering(estimate, {1: 1, 2: 5})
        assert 1 not in coefficients and 2 in coefficients

    def test_values_clamped(self):
        estimate = TriangleEstimate(global_count=0.0, local_counts={1: 1e6})
        coefficients = estimate_local_clustering(estimate, {1: 3})
        assert coefficients[1] == 1.0


class TestRankings:
    def test_rank_by_local_count_orders_descending(self):
        estimate = TriangleEstimate(
            global_count=0.0, local_counts={"a": 5.0, "b": 9.0, "c": 1.0}
        )
        ranking = rank_by_local_count(estimate, k=2)
        assert [node for node, _ in ranking] == ["b", "a"]

    def test_rank_k_validation(self):
        with pytest.raises(ValueError):
            rank_by_local_count(TriangleEstimate(global_count=0.0), k=0)

    def test_rank_ties_broken_deterministically(self):
        estimate = TriangleEstimate(global_count=0.0, local_counts={"x": 2.0, "a": 2.0})
        ranking = rank_by_local_count(estimate, k=2)
        assert [node for node, _ in ranking] == ["a", "x"]

    def test_exact_ranking_matches_truth_on_clique_plus_pendant(self):
        edges = [(i, j) for i in range(6) for j in range(i + 1, 6)] + [(0, 99)]
        estimate = ExactStreamingCounter().run(edges)
        top = rank_by_local_count(estimate, k=1)
        assert top[0][0] == 0  # node 0 has the clique triangles; 99 has none

    def test_suspicious_nodes_are_low_clustering_high_degree(self):
        # Node "hub" has degree 6 and zero triangles; clique nodes have high clustering.
        edges = [(i, j) for i in range(5) for j in range(i + 1, 5)]
        edges += [("hub", f"leaf{i}") for i in range(6)]
        estimate = ExactStreamingCounter().run(edges)
        degrees = {}
        for u, v in edges:
            degrees[u] = degrees.get(u, 0) + 1
            degrees[v] = degrees.get(v, 0) + 1
        suspects = suspicious_low_clustering_nodes(
            estimate, degrees, minimum_degree=4, max_results=1
        )
        assert suspects[0][0] == "hub"
        assert suspects[0][1] == 0.0

    def test_suspicious_nodes_validation(self):
        with pytest.raises(ValueError):
            suspicious_low_clustering_nodes(TriangleEstimate(global_count=0.0), {}, max_results=0)
