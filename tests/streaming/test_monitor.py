"""Tests for the sliding-window triangle monitor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exact import ExactStreamingCounter
from repro.baselines.triest import TriestImprEstimator
from repro.core import GroupStateSet, ReptConfig, ReptEstimator
from repro.streaming.monitor import WindowedTriangleMonitor
from repro.streaming.windows import TimeWindowedStream, TimestampedRecord
from repro.utils.rng import as_random_source, derive_seed

CONFIG = ReptConfig(m=4, c=6, seed=11, track_local=True)  # partial group: η tracked


def _trace(n=2500, nodes=30, span=60.0, jitter=0.0, seed=5):
    """Duplicate-heavy timestamped records, optionally delivered out of order."""
    rng = as_random_source(seed)
    records = []
    time = 0.0
    for _ in range(n):
        time += float(rng.random()) * (span / n) * 2.0
        u = int(rng.integers(0, nodes))
        v = int(rng.integers(0, nodes))
        stamp = time + (float(rng.random()) * 2.0 - 1.0) * jitter
        records.append((u, v, max(0.0, stamp)))
    return records


def _drain(monitor, records, chunk=700):
    closed = []
    for start in range(0, len(records), chunk):
        closed.extend(monitor.ingest(records[start : start + chunk]))
    closed.extend(monitor.flush())
    return closed


class TestValidation:
    def test_requires_exactly_one_engine(self):
        with pytest.raises(ValueError, match="exactly one"):
            WindowedTriangleMonitor(10.0)
        with pytest.raises(ValueError, match="exactly one"):
            WindowedTriangleMonitor(
                10.0, config=CONFIG, estimator_factory=lambda s: ExactStreamingCounter()
            )

    def test_slide_cannot_exceed_window(self):
        with pytest.raises(ValueError, match="slide"):
            WindowedTriangleMonitor(10.0, slide_seconds=20.0, config=CONFIG)

    def test_pane_must_divide_window_and_slide(self):
        with pytest.raises(ValueError, match="evenly divide"):
            WindowedTriangleMonitor(10.0, pane_seconds=3.0, config=CONFIG)
        with pytest.raises(ValueError, match="evenly divide"):
            WindowedTriangleMonitor(
                12.0, slide_seconds=6.0, pane_seconds=4.0, config=CONFIG
            )

    def test_late_policy_validated(self):
        with pytest.raises(ValueError, match="late_policy"):
            WindowedTriangleMonitor(10.0, config=CONFIG, late_policy="whatever")

    def test_negative_lateness_rejected(self):
        with pytest.raises(ValueError, match="allowed_lateness"):
            WindowedTriangleMonitor(10.0, config=CONFIG, allowed_lateness=-1.0)


class TestTumblingEquivalence:
    def test_matches_offline_windowing_and_reingestion(self):
        """Monitor windows == TimeWindowedStream slices re-ingested from scratch."""
        records = _trace()
        monitor = WindowedTriangleMonitor(10.0, config=CONFIG)
        results = _drain(monitor, records)

        offline = TimeWindowedStream(records, 10.0)
        streams = offline.window_streams()
        assert len(results) == len(streams)
        for result, stream in zip(results, streams):
            reference = ReptEstimator(CONFIG)
            reference.process_edges(stream.edges())
            expected = reference.estimate()
            assert result.estimate.global_count == expected.global_count
            assert result.estimate.local_counts == expected.local_counts
            assert result.estimate.edges_stored == expected.edges_stored
            assert result.estimate.metadata.get("eta_hat") == expected.metadata.get(
                "eta_hat"
            )

    def test_window_bounds_are_half_open_and_aligned(self):
        records = [(0, 1, 0.0), (1, 2, 10.0), (2, 0, 10.0)]
        monitor = WindowedTriangleMonitor(10.0, config=CONFIG, record_replay=True)
        results = _drain(monitor, records)
        assert [(r.start, r.end) for r in results] == [(0.0, 10.0), (10.0, 20.0)]
        assert results[0].replay == [(0, 1)]
        assert results[1].replay == [(1, 2), (2, 0)]


class TestSlidingWindows:
    def test_replay_is_bit_identical_to_reingestion(self):
        records = _trace(jitter=1.0)
        monitor = WindowedTriangleMonitor(
            20.0,
            slide_seconds=5.0,
            config=CONFIG,
            allowed_lateness=2.0,
            record_replay=True,
        )
        results = _drain(monitor, records)
        assert len(results) > 5
        for result in results:
            reference = ReptEstimator(CONFIG)
            reference.process_edges(result.replay)
            expected = reference.estimate()
            assert result.estimate.global_count == expected.global_count
            assert result.estimate.local_counts == expected.local_counts
            assert result.estimate.edges_stored == expected.edges_stored
            assert result.records == expected.edges_processed

    def test_advance_is_merge_only(self):
        """Advancing by one pane never re-ingests retained panes: the total
        records ingested across overlapping windows is exactly (records per
        pane) × (windows covering the pane)."""
        records = [(i % 7, (i + 1) % 7, float(t)) for t in range(40) for i in range(3)]
        monitor = WindowedTriangleMonitor(
            20.0, slide_seconds=10.0, pane_seconds=10.0, config=CONFIG
        )
        results = _drain(monitor, records)
        # Every full window saw exactly its two panes' records, assembled
        # from pane deltas (one delta per pane in the ring).
        for result in results:
            if result.complete and result.pane_deltas:
                assert len(result.pane_deltas) <= 2
                assert sum(d.records for d in result.pane_deltas) == result.records

    def test_pane_delta_snapshots_refold_to_window_state(self):
        """The ring entries are genuine mergeable snapshots: folding them
        into a fresh state set reproduces the window's estimate."""
        records = _trace(n=1200, span=30.0)
        monitor = WindowedTriangleMonitor(
            10.0, pane_seconds=2.5, config=CONFIG, record_replay=True
        )
        results = _drain(monitor, records)
        interesting = [r for r in results if r.pane_deltas]
        assert interesting
        for result in interesting:
            rebuilt = GroupStateSet(CONFIG)
            for delta in result.pane_deltas:
                rebuilt.merge_snapshots(list(delta.snapshots))
            estimate = rebuilt.estimate(result.records)
            assert estimate.global_count == result.estimate.global_count
            assert estimate.local_counts == result.estimate.local_counts
            assert estimate.edges_stored == result.estimate.edges_stored


class TestSealingAndLateness:
    def test_results_stream_out_as_watermark_passes(self):
        monitor = WindowedTriangleMonitor(10.0, config=CONFIG, origin=0.0)
        assert monitor.ingest([(0, 1, 1.0), (1, 2, 5.0)]) == []
        closed = monitor.ingest([(2, 0, 10.0)])  # watermark reaches pane 0's edge
        assert [r.index for r in closed] == [0]
        assert closed[0].records == 2
        assert monitor.open_window_indices() == [1]

    def test_allowed_lateness_defers_sealing(self):
        monitor = WindowedTriangleMonitor(
            10.0, config=CONFIG, origin=0.0, allowed_lateness=5.0
        )
        assert monitor.ingest([(0, 1, 1.0), (1, 2, 12.0)]) == []
        # A record 3s behind the max timestamp is still admitted.
        assert monitor.ingest([(2, 0, 9.0)]) == []
        closed = monitor.ingest([(0, 2, 15.5)])
        assert [r.index for r in closed] == [0]
        assert closed[0].records == 2
        assert monitor.late_records == 0

    def test_late_records_dropped_and_counted(self):
        monitor = WindowedTriangleMonitor(10.0, config=CONFIG)
        monitor.ingest([(0, 1, 1.0), (1, 2, 11.0)])  # seals pane 0
        monitor.ingest([(2, 0, 2.0)])  # late for pane 0
        assert monitor.late_records == 1
        results = monitor.flush()
        assert results[0].records == 1  # the late record is not smuggled in

    def test_late_policy_raise(self):
        monitor = WindowedTriangleMonitor(10.0, config=CONFIG, late_policy="raise")
        monitor.ingest([(0, 1, 1.0), (1, 2, 11.0)])
        with pytest.raises(ValueError, match="sealed pane"):
            monitor.ingest([(2, 0, 2.0)])

    def test_advance_watermark_closes_without_records(self):
        monitor = WindowedTriangleMonitor(10.0, config=CONFIG, origin=0.0)
        monitor.ingest([(0, 1, 1.0), (1, 2, 2.0)])
        closed = monitor.advance_watermark(10.0)
        assert [r.index for r in closed] == [0]
        assert closed[0].records == 2
        # Ticks are monotone and idempotent.
        assert monitor.advance_watermark(5.0) == []
        assert monitor.watermark == 10.0

    def test_advance_watermark_estimate_matches_reingestion(self):
        records = [r for r in _trace(n=800, span=20.0) if r[2] < 10.0]
        assert records
        monitor = WindowedTriangleMonitor(
            10.0, config=CONFIG, origin=0.0, record_replay=True
        )
        assert monitor.ingest(records) == []
        closed = monitor.advance_watermark(10.0)
        assert len(closed) == 1
        reference = ReptEstimator(CONFIG)
        reference.process_edges(closed[0].replay)
        assert closed[0].estimate.global_count == reference.estimate().global_count

    def test_advance_watermark_respects_lateness(self):
        monitor = WindowedTriangleMonitor(
            10.0, config=CONFIG, origin=0.0, allowed_lateness=5.0
        )
        monitor.ingest([(0, 1, 1.0)])
        assert monitor.advance_watermark(12.0) == []  # watermark only 7.0
        assert monitor.advance_watermark(15.0) != []

    def test_advance_watermark_rejects_non_finite(self):
        monitor = WindowedTriangleMonitor(10.0, config=CONFIG, origin=0.0)
        monitor.ingest([(0, 1, 1.0)])
        with pytest.raises(ValueError, match="finite"):
            monitor.advance_watermark(float("inf"))
        with pytest.raises(ValueError, match="finite"):
            monitor.advance_watermark(float("nan"))

    def test_far_future_tick_terminates_and_seals(self):
        # A tick far beyond the observed span must close the observed
        # windows promptly (no pane-by-pane spin, no unbounded empty
        # results) and still make subsequent old records late.
        monitor = WindowedTriangleMonitor(10.0, config=CONFIG, origin=0.0)
        closed = monitor.ingest([(0, 1, 1.0), (1, 2, 12.0)])
        assert [r.index for r in closed] == [0]  # t=12 already sealed pane 0
        closed = monitor.advance_watermark(1.0e12)
        assert [r.index for r in closed] == [1]  # data span ends at pane 1
        assert len(monitor.results) == 2
        monitor.ingest([(2, 0, 13.0)])
        assert monitor.late_records == 1

    def test_derived_origin_admits_bounded_out_of_order(self):
        # With a derived origin, a record delivered late but within
        # allowed_lateness must be admitted even if its timestamp precedes
        # the first batch's minimum (the lateness contract).
        monitor = WindowedTriangleMonitor(
            10.0, config=CONFIG, allowed_lateness=30.0, record_replay=True
        )
        monitor.ingest([(1, 2, 5.0), (2, 0, 6.0)])
        monitor.ingest([(0, 1, 1.0)])  # earlier than anything in batch 1
        results = monitor.flush()
        assert monitor.late_records == 0
        assert sum(r.records for r in results) == 3
        reference = ReptEstimator(CONFIG)
        reference.process_edges([(1, 2), (2, 0), (0, 1)])
        assert (
            sum(r.estimate.global_count for r in results)
            == reference.estimate().global_count
        )

    def test_pane_deltas_do_not_pin_window_groups(self):
        # Closed-window results keep only O(pane) delta state: the ring
        # entries hold group shapes and the shared node table, never the
        # window's live ProcessorGroups with their full adjacency.
        records = _trace(n=600, span=20.0)
        monitor = WindowedTriangleMonitor(10.0, pane_seconds=5.0, config=CONFIG)
        results = _drain(monitor, records)
        deltas = [d for r in results if r.pane_deltas for d in r.pane_deltas]
        assert deltas
        for delta in deltas:
            assert not hasattr(delta, "_groups")
            assert all(isinstance(shape, tuple) for shape in delta._shapes)
            # Snapshots still externalize correctly after the chain is gone.
            assert delta.snapshots[0]["m"] == CONFIG.m

    def test_empty_windows_keep_series_aligned(self):
        records = [(0, 1, 1.0), (1, 2, 35.0)]
        monitor = WindowedTriangleMonitor(10.0, config=CONFIG)
        results = _drain(monitor, records)
        assert [r.index for r in results] == [0, 1, 2, 3]
        assert [r.records for r in results] == [1, 0, 0, 1]
        assert results[1].estimate.global_count == 0.0

    def test_flush_marks_partial_windows(self):
        records = [(0, 1, 1.0), (1, 2, 12.0)]
        monitor = WindowedTriangleMonitor(
            20.0, slide_seconds=10.0, config=CONFIG
        )
        results = _drain(monitor, records)
        # Window 0 saw both its panes; window 1's second pane never arrived.
        assert [r.index for r in results] == [0, 1]
        assert results[0].complete is True
        assert results[1].complete is False


class TestServiceTimerIdempotency:
    """The service layer ticks flush()/advance_watermark() on timers: both
    must be re-entrant and idempotent when no new panes arrived."""

    def test_double_flush_emits_nothing_new(self):
        monitor = WindowedTriangleMonitor(10.0, config=CONFIG, origin=0.0)
        monitor.ingest([(0, 1, 1.0), (1, 2, 2.0), (2, 0, 3.0)])
        first = monitor.flush()
        assert [r.index for r in first] == [0]
        emitted = len(monitor.results)
        assert monitor.flush() == []
        assert monitor.flush() == []
        assert len(monitor.results) == emitted

    def test_non_advancing_watermark_ticks_emit_nothing(self):
        monitor = WindowedTriangleMonitor(10.0, config=CONFIG, origin=0.0)
        monitor.ingest([(0, 1, 1.0), (1, 2, 2.0)])
        closed = monitor.advance_watermark(10.0)
        assert [r.index for r in closed] == [0]
        emitted = len(monitor.results)
        # Repeated identical (and stale) ticks: no duplicates, no movement.
        for tick in (10.0, 10.0, 4.0, 10.0):
            assert monitor.advance_watermark(tick) == []
        assert monitor.watermark == 10.0
        assert len(monitor.results) == emitted

    def test_watermark_tick_after_flush_never_reemits(self):
        monitor = WindowedTriangleMonitor(10.0, config=CONFIG, origin=0.0)
        monitor.ingest([(0, 1, 1.0), (1, 2, 2.0), (2, 0, 3.0)])
        flushed = monitor.flush()
        assert [r.index for r in flushed] == [0]
        # flush() emitted window 0 without sealing its panes; a later timer
        # tick walking the seal must not emit the same window index again.
        assert monitor.advance_watermark(100.0) == []
        assert [r.index for r in monitor.results] == [0]
        assert monitor.flush() == []

    def test_flush_tick_interleaving_with_sliding_windows(self):
        monitor = WindowedTriangleMonitor(
            20.0, slide_seconds=10.0, config=CONFIG, origin=0.0
        )
        monitor.ingest([(0, 1, 1.0), (1, 2, 12.0), (2, 0, 15.0)])
        flushed = monitor.flush()
        assert [r.index for r in flushed] == [0, 1]
        assert monitor.advance_watermark(500.0) == []
        assert monitor.flush() == []
        assert [r.index for r in monitor.results] == [0, 1]

    def test_factory_engine_flush_then_tick(self):
        monitor = WindowedTriangleMonitor(
            10.0, estimator_factory=lambda s: ExactStreamingCounter(), origin=0.0
        )
        monitor.ingest([(0, 1, 1.0), (1, 2, 2.0), (2, 0, 3.0)])
        assert [r.index for r in monitor.flush()] == [0]
        assert monitor.advance_watermark(50.0) == []
        assert monitor.flush() == []
        assert len(monitor.results) == 1


class TestColumnarAndEngines:
    def test_ingest_columns_accepts_numpy(self):
        us = np.array([0, 1, 2, 0], dtype=np.int64)
        vs = np.array([1, 2, 0, 2], dtype=np.int64)
        ts = np.array([0.0, 1.0, 2.0, 11.0])
        monitor = WindowedTriangleMonitor(10.0, config=CONFIG, record_replay=True)
        closed = monitor.ingest_columns(us, vs, ts)
        closed.extend(monitor.flush())
        reference = ReptEstimator(CONFIG)
        reference.process_edges([(0, 1), (1, 2), (2, 0)])
        assert closed[0].estimate.global_count == reference.estimate().global_count
        # Raw Python ints reach the estimator, not numpy scalars.
        assert all(type(u) is int for u, _ in closed[0].replay)

    def test_mismatched_columns_rejected(self):
        monitor = WindowedTriangleMonitor(10.0, config=CONFIG)
        with pytest.raises(ValueError, match="equal lengths"):
            monitor.ingest_columns([0, 1], [1], [0.0, 1.0])

    def test_non_finite_timestamps_rejected(self):
        monitor = WindowedTriangleMonitor(10.0, config=CONFIG)
        with pytest.raises(ValueError, match="finite"):
            monitor.ingest([(0, 1, float("nan"))])

    def test_factory_engine_matches_fresh_estimator(self):
        records = _trace(n=900, span=30.0)
        monitor = WindowedTriangleMonitor(
            10.0,
            estimator_factory=lambda s: TriestImprEstimator(budget=50, seed=s),
            seed=77,
            record_replay=True,
        )
        results = _drain(monitor, records)
        for result in results:
            reference = TriestImprEstimator(
                budget=50, seed=derive_seed(77, "monitor-window", result.index)
            )
            reference.process_edges(result.replay)
            assert result.estimate.global_count == reference.estimate().global_count

    def test_exact_factory_matches_offline_truth(self):
        records = _trace(n=900, span=30.0)
        monitor = WindowedTriangleMonitor(
            10.0, estimator_factory=lambda s: ExactStreamingCounter()
        )
        results = _drain(monitor, records)
        offline = TimeWindowedStream(records, 10.0)
        for result, stream in zip(results, offline.window_streams()):
            truth = ExactStreamingCounter()
            truth.process_edges(stream.edges())
            assert result.estimate.global_count == truth.estimate().global_count

    def test_explicit_origin_controls_alignment(self):
        monitor = WindowedTriangleMonitor(10.0, config=CONFIG, origin=100.0)
        monitor.ingest([(0, 1, 105.0)])
        results = monitor.flush()
        assert (results[0].start, results[0].end) == (100.0, 110.0)

    def test_timestamped_record_objects_accepted(self):
        monitor = WindowedTriangleMonitor(10.0, config=CONFIG)
        monitor.ingest([TimestampedRecord(0, 1, 0.5)])
        results = monitor.flush()
        assert results[0].records == 1
