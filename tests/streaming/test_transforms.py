"""Tests for stream transforms."""

import pytest

from repro.graph.triangles import count_triangles
from repro.streaming.edge_stream import EdgeStream
from repro.streaming.transforms import (
    deduplicate_edges,
    drop_self_loops,
    relabel_nodes,
    shuffle_stream,
    subsample_stream,
)


class TestCleaning:
    def test_drop_self_loops(self):
        stream = EdgeStream([(1, 1), (1, 2), (2, 2)], validate=False)
        assert drop_self_loops(stream).edges() == [(1, 2)]

    def test_deduplicate_keeps_first_occurrence_order(self):
        stream = EdgeStream([(1, 2), (3, 4), (2, 1), (3, 4), (4, 5)])
        assert deduplicate_edges(stream).edges() == [(1, 2), (3, 4), (4, 5)]

    def test_relabel_to_dense_integers(self):
        stream = EdgeStream([("x", "y"), ("y", "z")])
        relabeled = relabel_nodes(stream)
        assert relabeled.edges() == [(0, 1), (1, 2)]

    def test_relabel_with_explicit_mapping(self):
        stream = EdgeStream([(10, 20)])
        relabeled = relabel_nodes(stream, mapping={10: 0, 20: 1})
        assert relabeled.edges() == [(0, 1)]


class TestReordering:
    def test_shuffle_preserves_multiset(self):
        stream = EdgeStream([(i, i + 1) for i in range(50)])
        shuffled = shuffle_stream(stream, seed=1)
        assert sorted(shuffled.edges()) == sorted(stream.edges())
        assert shuffled.edges() != stream.edges()

    def test_shuffle_is_deterministic_for_seed(self):
        stream = EdgeStream([(i, i + 1) for i in range(30)])
        assert shuffle_stream(stream, seed=5).edges() == shuffle_stream(stream, seed=5).edges()

    def test_shuffle_preserves_triangle_count(self, clique_stream):
        shuffled = shuffle_stream(clique_stream, seed=3)
        assert count_triangles(shuffled.to_graph()) == count_triangles(clique_stream.to_graph())


class TestSubsample:
    def test_probability_bounds(self):
        stream = EdgeStream([(1, 2)])
        with pytest.raises(ValueError):
            subsample_stream(stream, 1.5)
        with pytest.raises(ValueError):
            subsample_stream(stream, -0.1)

    def test_extremes(self):
        stream = EdgeStream([(i, i + 1) for i in range(20)])
        assert len(subsample_stream(stream, 0.0, seed=1)) == 0
        assert len(subsample_stream(stream, 1.0, seed=1)) == 20

    def test_roughly_half(self):
        stream = EdgeStream([(i, i + 1) for i in range(2000)])
        kept = len(subsample_stream(stream, 0.5, seed=7))
        assert 800 < kept < 1200
