"""Regression tests for the readers' damaged-input policies."""

from __future__ import annotations

import gzip

import pytest

from repro.exceptions import StreamFormatError
from repro.streaming.readers import (
    BAD_RECORD_POLICIES,
    BadRecordLog,
    iter_edge_lines,
    read_edge_list,
)
from repro.testing.faults import truncate_file

CLEAN = "# comment\n1 2\n2 3\n\n3 4\n"
DAMAGED = "1 2\ngarbage\n2 3\nlonely\n% comment\n3 4\n"


def _write(tmp_path, text, name="edges.txt"):
    path = tmp_path / name
    path.write_text(text, encoding="utf-8")
    return path


class TestRaisePolicy:
    def test_default_raises_on_garbage(self, tmp_path):
        path = _write(tmp_path, DAMAGED)
        with pytest.raises(StreamFormatError, match="garbage"):
            list(iter_edge_lines(path))

    def test_clean_file_unaffected(self, tmp_path):
        path = _write(tmp_path, CLEAN)
        stream = read_edge_list(path)
        assert list(stream) == [(1, 2), (2, 3), (3, 4)]
        assert stream.bad_records.skipped == 0
        assert stream.bad_records.quarantined == 0

    def test_unknown_policy_rejected(self, tmp_path):
        path = _write(tmp_path, CLEAN)
        with pytest.raises(ValueError, match="on_bad_record"):
            list(iter_edge_lines(path, on_bad_record="ignore"))
        assert "skip" in BAD_RECORD_POLICIES


class TestSkipPolicy:
    def test_garbage_lines_are_dropped_and_counted(self, tmp_path):
        path = _write(tmp_path, DAMAGED)
        stream = read_edge_list(path, on_bad_record="skip")
        assert list(stream) == [(1, 2), (2, 3), (3, 4)]
        assert stream.bad_records.skipped == 2
        assert stream.bad_records.quarantined == 0
        assert stream.bad_records.quarantine_path is None

    def test_truncated_last_line(self, tmp_path):
        path = _write(tmp_path, "10 20\n30 40\n50 6")
        truncate_file(path, len("10 20\n30 40\n5"))
        stream = read_edge_list(path, on_bad_record="skip")
        assert list(stream) == [(10, 20), (30, 40)]
        assert stream.bad_records.skipped == 1

    def test_binary_garbage_survives_decoding(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_bytes(b"1 2\n\xff\xfe\x00\n3 4\n")
        stream = read_edge_list(path, on_bad_record="skip")
        assert list(stream) == [(1, 2), (3, 4)]
        assert stream.bad_records.skipped == 1

    def test_strict_decoding_under_raise(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_bytes(b"1 2\n\xff\xfe\n3 4\n")
        with pytest.raises((StreamFormatError, UnicodeDecodeError)):
            list(iter_edge_lines(path))

    def test_comments_and_blanks_are_never_bad(self, tmp_path):
        path = _write(tmp_path, "# a\n\n% b\n// c\n1 2\n")
        log = BadRecordLog()
        edges = list(iter_edge_lines(path, on_bad_record="skip", bad_record_log=log))
        assert edges == [(1, 2)]
        assert log.skipped == 0


class TestQuarantinePolicy:
    def test_sidecar_receives_raw_lines(self, tmp_path):
        path = _write(tmp_path, DAMAGED)
        stream = read_edge_list(path, on_bad_record="quarantine")
        assert list(stream) == [(1, 2), (2, 3), (3, 4)]
        assert stream.bad_records.skipped == 2
        assert stream.bad_records.quarantined == 2
        sidecar = stream.bad_records.quarantine_path
        assert sidecar == path.parent / "edges.txt.quarantine"
        assert sidecar.read_text() == "garbage\nlonely\n"

    def test_explicit_sidecar_path(self, tmp_path):
        path = _write(tmp_path, DAMAGED)
        sidecar = tmp_path / "bad-lines.log"
        stream = read_edge_list(
            path, on_bad_record="quarantine", quarantine_path=sidecar
        )
        list(stream)
        assert stream.bad_records.quarantine_path == sidecar
        assert sidecar.read_text() == "garbage\nlonely\n"

    def test_no_sidecar_created_for_clean_input(self, tmp_path):
        path = _write(tmp_path, CLEAN)
        stream = read_edge_list(path, on_bad_record="quarantine")
        list(stream)
        assert stream.bad_records.quarantine_path is None
        assert not (tmp_path / "edges.txt.quarantine").exists()

    def test_gzip_input(self, tmp_path):
        path = tmp_path / "edges.txt.gz"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write(DAMAGED)
        stream = read_edge_list(path, on_bad_record="quarantine")
        assert list(stream) == [(1, 2), (2, 3), (3, 4)]
        assert stream.bad_records.quarantined == 2
