"""Tests for time-interval windowing."""

import pytest

from repro.streaming.windows import TimestampedRecord, TimeWindowedStream


class TestTimeWindowedStream:
    def test_window_count(self):
        records = [(0, 1, 0.0), (1, 2, 30.0), (2, 3, 61.0)]
        windowed = TimeWindowedStream(records, window_seconds=60.0)
        assert len(windowed) == 2

    def test_empty_input(self):
        windowed = TimeWindowedStream([], window_seconds=10.0)
        assert len(windowed) == 0
        assert list(windowed.windows()) == []

    def test_invalid_width_raises(self):
        with pytest.raises(ValueError):
            TimeWindowedStream([], window_seconds=0)

    def test_records_assigned_to_correct_window(self):
        records = [(0, 1, 5.0), (1, 2, 15.0), (2, 3, 25.0)]
        windowed = TimeWindowedStream(records, window_seconds=10.0)
        streams = windowed.window_streams()
        assert [len(s) for s in streams] == [1, 1, 1]

    def test_out_of_order_records_are_sorted(self):
        records = [(0, 1, 25.0), (1, 2, 5.0)]
        windowed = TimeWindowedStream(records, window_seconds=10.0)
        starts = [start for start, _, _ in windowed.windows()]
        assert starts == sorted(starts)

    def test_self_loops_dropped_from_windows(self):
        records = [(1, 1, 0.0), (1, 2, 1.0)]
        windowed = TimeWindowedStream(records, window_seconds=10.0)
        assert [len(s) for s in windowed.window_streams()] == [1]

    def test_empty_windows_still_yielded(self):
        records = [(0, 1, 0.0), (1, 2, 35.0)]
        windowed = TimeWindowedStream(records, window_seconds=10.0)
        lengths = [len(s) for s in windowed.window_streams()]
        assert lengths == [1, 0, 0, 1]

    def test_accepts_timestamped_record_objects(self):
        records = [TimestampedRecord(0, 1, 2.0)]
        windowed = TimeWindowedStream(records, window_seconds=5.0)
        assert len(windowed.window_streams()) == 1

    def test_window_bounds(self):
        records = [(0, 1, 100.0), (1, 2, 130.0)]
        windowed = TimeWindowedStream(records, window_seconds=20.0)
        bounds = [(start, end) for start, end, _ in windowed.windows()]
        assert bounds[0] == (100.0, 120.0)
        assert bounds[1] == (120.0, 140.0)


class TestHalfOpenBoundaries:
    """Regression tests: [start, end) everywhere, no silent drops."""

    def test_record_at_final_right_edge_gets_its_own_window(self):
        # A record landing exactly on the last window's right edge belongs
        # to the *next* half-open window — it must never be dropped.
        records = [(0, 1, 0.0), (1, 2, 60.0)]
        windowed = TimeWindowedStream(records, window_seconds=60.0)
        triples = list(windowed.windows())
        assert len(triples) == 2
        assert triples[1][0] == 60.0 and triples[1][1] == 120.0
        assert triples[1][2].edges() == [(1, 2)]
        assert sum(len(s) for _, _, s in triples) == 2

    def test_record_on_interior_boundary_joins_right_window(self):
        records = [(0, 1, 0.0), (1, 2, 10.0), (2, 3, 19.999)]
        windowed = TimeWindowedStream(records, window_seconds=10.0)
        lengths = [len(s) for s in windowed.window_streams()]
        assert lengths == [1, 2]

    def test_explicit_end_record_at_edge_raises_not_drops(self):
        records = [(0, 1, 0.0), (1, 2, 60.0)]
        with pytest.raises(ValueError, match="half-open"):
            TimeWindowedStream(records, window_seconds=60.0, end=60.0)

    def test_explicit_end_drop_policy_counts(self):
        records = [(0, 1, 0.0), (1, 2, 60.0), (2, 3, 61.0)]
        windowed = TimeWindowedStream(
            records, window_seconds=60.0, end=60.0, out_of_range="drop"
        )
        assert windowed.records_out_of_range == 2
        assert [len(s) for s in windowed.window_streams()] == [1]

    def test_explicit_origin_aligns_windows(self):
        records = [(0, 1, 125.0), (1, 2, 185.0)]
        windowed = TimeWindowedStream(records, window_seconds=60.0, origin=120.0)
        bounds = [(start, end) for start, end, _ in windowed.windows()]
        assert bounds == [(120.0, 180.0), (180.0, 240.0)]

    def test_record_before_explicit_origin_raises(self):
        with pytest.raises(ValueError, match="half-open"):
            TimeWindowedStream([(0, 1, 5.0)], window_seconds=10.0, origin=6.0)

    def test_invalid_out_of_range_policy(self):
        with pytest.raises(ValueError, match="out_of_range"):
            TimeWindowedStream([], window_seconds=10.0, out_of_range="ignore")

    def test_explicit_end_must_exceed_origin(self):
        with pytest.raises(ValueError, match="end"):
            TimeWindowedStream([], window_seconds=10.0, origin=5.0, end=5.0)

    def test_records_accessor_sorted(self):
        records = [(0, 1, 9.0), (1, 2, 1.0)]
        windowed = TimeWindowedStream(records, window_seconds=10.0)
        assert [r.time for r in windowed.records()] == [1.0, 9.0]


class TestPaneAlignedIteration:
    def test_panes_default_to_window_width(self):
        records = [(0, 1, 0.0), (1, 2, 15.0)]
        windowed = TimeWindowedStream(records, window_seconds=10.0)
        assert [len(s) for _, _, s in windowed.panes()] == [
            len(s) for s in windowed.window_streams()
        ]

    def test_panes_partition_windows(self):
        records = [(0, 1, 0.0), (1, 2, 4.0), (2, 3, 5.0), (3, 4, 12.0)]
        windowed = TimeWindowedStream(records, window_seconds=10.0)
        panes = list(windowed.panes(5.0))
        assert [(start, end) for start, end, _ in panes] == [
            (0.0, 5.0),
            (5.0, 10.0),
            (10.0, 15.0),
            (15.0, 20.0),
        ]
        assert [len(s) for _, _, s in panes] == [2, 1, 1, 0]
        # Concatenated panes reproduce the windows exactly.
        window_edges = [s.edges() for s in windowed.window_streams()]
        assert [
            panes[0][2].edges() + panes[1][2].edges(),
            panes[2][2].edges() + panes[3][2].edges(),
        ] == window_edges

    def test_pane_width_must_divide_window(self):
        windowed = TimeWindowedStream([(0, 1, 0.0)], window_seconds=10.0)
        with pytest.raises(ValueError, match="evenly divide"):
            list(windowed.panes(3.0))

    def test_pane_width_must_be_positive(self):
        windowed = TimeWindowedStream([(0, 1, 0.0)], window_seconds=10.0)
        with pytest.raises(ValueError, match="positive"):
            list(windowed.panes(0.0))
