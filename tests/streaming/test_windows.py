"""Tests for time-interval windowing."""

import pytest

from repro.streaming.windows import TimestampedRecord, TimeWindowedStream


class TestTimeWindowedStream:
    def test_window_count(self):
        records = [(0, 1, 0.0), (1, 2, 30.0), (2, 3, 61.0)]
        windowed = TimeWindowedStream(records, window_seconds=60.0)
        assert len(windowed) == 2

    def test_empty_input(self):
        windowed = TimeWindowedStream([], window_seconds=10.0)
        assert len(windowed) == 0
        assert list(windowed.windows()) == []

    def test_invalid_width_raises(self):
        with pytest.raises(ValueError):
            TimeWindowedStream([], window_seconds=0)

    def test_records_assigned_to_correct_window(self):
        records = [(0, 1, 5.0), (1, 2, 15.0), (2, 3, 25.0)]
        windowed = TimeWindowedStream(records, window_seconds=10.0)
        streams = windowed.window_streams()
        assert [len(s) for s in streams] == [1, 1, 1]

    def test_out_of_order_records_are_sorted(self):
        records = [(0, 1, 25.0), (1, 2, 5.0)]
        windowed = TimeWindowedStream(records, window_seconds=10.0)
        starts = [start for start, _, _ in windowed.windows()]
        assert starts == sorted(starts)

    def test_self_loops_dropped_from_windows(self):
        records = [(1, 1, 0.0), (1, 2, 1.0)]
        windowed = TimeWindowedStream(records, window_seconds=10.0)
        assert [len(s) for s in windowed.window_streams()] == [1]

    def test_empty_windows_still_yielded(self):
        records = [(0, 1, 0.0), (1, 2, 35.0)]
        windowed = TimeWindowedStream(records, window_seconds=10.0)
        lengths = [len(s) for s in windowed.window_streams()]
        assert lengths == [1, 0, 0, 1]

    def test_accepts_timestamped_record_objects(self):
        records = [TimestampedRecord(0, 1, 2.0)]
        windowed = TimeWindowedStream(records, window_seconds=5.0)
        assert len(windowed.window_streams()) == 1

    def test_window_bounds(self):
        records = [(0, 1, 100.0), (1, 2, 130.0)]
        windowed = TimeWindowedStream(records, window_seconds=20.0)
        bounds = [(start, end) for start, end, _ in windowed.windows()]
        assert bounds[0] == (100.0, 120.0)
        assert bounds[1] == (120.0, 140.0)
