"""Tests for the EdgeStream abstraction."""

import pytest

from repro.exceptions import StreamFormatError
from repro.graph.adjacency import AdjacencyGraph
from repro.streaming.edge_stream import EdgeStream


class TestConstruction:
    def test_materialises_and_replays(self):
        stream = EdgeStream([(1, 2), (2, 3)])
        assert list(stream) == [(1, 2), (2, 3)]
        assert list(stream) == [(1, 2), (2, 3)]  # replayable

    def test_self_loop_rejected_by_default(self):
        with pytest.raises(StreamFormatError):
            EdgeStream([(1, 1)])

    def test_self_loop_allowed_without_validation(self):
        stream = EdgeStream([(1, 1)], validate=False)
        assert len(stream) == 1

    def test_len_and_repr(self):
        stream = EdgeStream([(1, 2)], name="tiny")
        assert len(stream) == 1
        assert "tiny" in repr(stream)

    def test_from_pairs(self):
        assert len(EdgeStream.from_pairs([(1, 2), (3, 4)])) == 2

    def test_from_graph_is_deterministic(self):
        graph = AdjacencyGraph([(3, 1), (2, 1)])
        a = EdgeStream.from_graph(graph).edges()
        b = EdgeStream.from_graph(graph).edges()
        assert a == b
        assert len(a) == 2


class TestViews:
    def test_getitem_and_slice(self):
        stream = EdgeStream([(1, 2), (2, 3), (3, 4)])
        assert stream[0] == (1, 2)
        assert isinstance(stream[:2], EdgeStream)
        assert len(stream[:2]) == 2

    def test_enumerate_is_one_based(self):
        stream = EdgeStream([(1, 2), (2, 3)])
        assert list(stream.enumerate()) == [(1, (1, 2)), (2, (2, 3))]

    def test_distinct_edges_canonical(self):
        stream = EdgeStream([(2, 1), (1, 2), (3, 2)])
        assert stream.distinct_edges() == [(1, 2), (2, 3)]
        assert stream.num_distinct_edges == 2

    def test_nodes_first_appearance_order(self):
        stream = EdgeStream([(5, 2), (2, 7)])
        assert stream.nodes() == [5, 2, 7]

    def test_to_graph(self):
        stream = EdgeStream([(1, 2), (2, 3), (1, 2)])
        graph = stream.to_graph()
        assert graph.num_edges == 2

    def test_iter_batches_partitions_in_order(self):
        stream = EdgeStream([(i, i + 1) for i in range(7)])
        batches = list(stream.iter_batches(3))
        assert [len(batch) for batch in batches] == [3, 3, 1]
        assert [edge for batch in batches for edge in batch] == stream.edges()

    def test_iter_batches_rejects_bad_size(self):
        with pytest.raises(ValueError):
            list(EdgeStream([(1, 2)]).iter_batches(0))

    def test_as_columns_int_stream_is_numpy(self):
        import numpy as np

        us, vs = EdgeStream([(1, 2), (3, 4)]).as_columns()
        assert isinstance(us, np.ndarray) and us.dtype == np.int64
        assert list(zip(us.tolist(), vs.tolist())) == [(1, 2), (3, 4)]
        assert all(type(u) is int for u in us.tolist())

    def test_as_columns_falls_back_for_non_int_nodes(self):
        us, vs = EdgeStream([("a", "b"), ("c", "d")]).as_columns()
        assert us == ["a", "c"] and vs == ["b", "d"]
        # huge ints exceed int64 -> list fallback, identity preserved
        us, vs = EdgeStream([(2**70, 1)]).as_columns()
        assert us == [2**70]


class TestValidationPropagation:
    def test_constructor_sets_validated(self):
        assert EdgeStream([(1, 2)]).validated
        assert not EdgeStream([(1, 2)], validate=False).validated

    def test_slice_of_validated_stream_skips_revalidation(self):
        stream = EdgeStream([(1, 2), (2, 3)])
        assert stream[:1].validated

    def test_slice_of_unvalidated_stream_is_revalidated(self):
        dirty = EdgeStream([(1, 2), (3, 3)], validate=False)
        with pytest.raises(StreamFormatError):
            dirty[:2]
        clean_part = dirty[:1]  # the loop-free part passes and is now checked
        assert clean_part.validated

    def test_prefix_of_unvalidated_stream_is_revalidated(self):
        dirty = EdgeStream([(1, 2), (3, 3)], validate=False)
        with pytest.raises(StreamFormatError):
            dirty.prefix(2)

    def test_filter_and_concat_propagate_flag(self):
        validated = EdgeStream([(1, 2), (2, 3)])
        unvalidated = EdgeStream([(4, 5)], validate=False)
        assert validated.filter(lambda e: True).validated
        assert not unvalidated.filter(lambda e: True).validated
        assert validated.concat(validated).validated
        assert not validated.concat(unvalidated).validated

    def test_map_result_is_unvalidated(self):
        # A mapping may merge endpoints into a self-loop, so the child must
        # not claim loop-freedom.
        mapped = EdgeStream([(1, 2)]).map(lambda e: (0, 0))
        assert not mapped.validated
        with pytest.raises(StreamFormatError):
            mapped[:1]

    def test_from_graph_is_validated(self):
        graph = AdjacencyGraph([(1, 2)])
        assert EdgeStream.from_graph(graph).validated


class TestDerivation:
    def test_map(self):
        stream = EdgeStream([(1, 2)]).map(lambda e: (e[0] + 10, e[1] + 10))
        assert stream.edges() == [(11, 12)]

    def test_filter(self):
        stream = EdgeStream([(1, 2), (2, 3)]).filter(lambda e: e[0] == 1)
        assert stream.edges() == [(1, 2)]

    def test_prefix(self):
        stream = EdgeStream([(1, 2), (2, 3), (3, 4)])
        assert stream.prefix(2).edges() == [(1, 2), (2, 3)]
        with pytest.raises(ValueError):
            stream.prefix(-1)

    def test_concat(self):
        merged = EdgeStream([(1, 2)]).concat(EdgeStream([(3, 4)]))
        assert merged.edges() == [(1, 2), (3, 4)]
