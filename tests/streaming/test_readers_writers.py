"""Tests for edge-list file readers and writers."""

import gzip

import pytest

from repro.exceptions import StreamFormatError
from repro.streaming.readers import parse_edge_line, read_edge_list
from repro.streaming.writers import write_edge_list


class TestParseEdgeLine:
    def test_whitespace_separated(self):
        assert parse_edge_line("1\t2") == (1, 2)
        assert parse_edge_line("3 4") == (3, 4)

    def test_comma_delimiter(self):
        assert parse_edge_line("1,2", delimiter=",") == (1, 2)

    def test_comments_and_blank_lines(self):
        assert parse_edge_line("# comment") is None
        assert parse_edge_line("% comment") is None
        assert parse_edge_line("// comment") is None
        assert parse_edge_line("   ") is None

    def test_string_ids_preserved_when_not_int(self):
        assert parse_edge_line("alice bob") == ("alice", "bob")

    def test_as_int_false_keeps_strings(self):
        assert parse_edge_line("1 2", as_int=False) == ("1", "2")

    def test_extra_columns_ignored(self):
        assert parse_edge_line("1 2 1490283") == (1, 2)

    def test_single_field_raises(self):
        with pytest.raises(StreamFormatError):
            parse_edge_line("only-one-field")


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        path = tmp_path / "edges.tsv"
        edges = [(1, 2), (2, 3), (3, 4)]
        written = write_edge_list(edges, path, header="test file")
        assert written == 3
        stream = read_edge_list(path)
        assert stream.edges() == edges
        assert stream.name == "edges"

    def test_gzip_round_trip(self, tmp_path):
        path = tmp_path / "edges.tsv.gz"
        edges = [(10, 20), (30, 40)]
        write_edge_list(edges, path)
        with gzip.open(path, "rt") as handle:
            assert len(handle.readlines()) == 2
        assert read_edge_list(path).edges() == edges

    def test_reader_drops_self_loops_by_default(self, tmp_path):
        path = tmp_path / "loops.txt"
        path.write_text("1 1\n1 2\n")
        assert read_edge_list(path).edges() == [(1, 2)]

    def test_reader_custom_name(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("1 2\n")
        assert read_edge_list(path, name="custom").name == "custom"

    def test_comma_separated_file(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("# header\n1,2\n2,3\n")
        stream = read_edge_list(path, delimiter=",")
        assert stream.edges() == [(1, 2), (2, 3)]


class TestJsonlEdgeLog:
    """Append-mode JSONL replay/audit log: writer + reader round trips."""

    def test_round_trip_edges_and_timestamped_records(self, tmp_path):
        from repro.streaming.readers import read_jsonl_records
        from repro.streaming.writers import JsonlEdgeLogWriter

        path = tmp_path / "audit.jsonl"
        with JsonlEdgeLogWriter(path) as writer:
            writer.append(1, 2)
            writer.append(2, 3, t=1.5)
            writer.append("host-a", "host-b")
            assert writer.append_batch([(5, 6), (6, 7, 2.25)]) == 2
            assert writer.records_written == 5
        records, log = read_jsonl_records(path)
        assert records == [
            (1, 2),
            (2, 3, 1.5),
            ("host-a", "host-b"),
            (5, 6),
            (6, 7, 2.25),
        ]
        assert log.skipped == 0

    def test_append_mode_continues_existing_log(self, tmp_path):
        from repro.streaming.readers import read_jsonl_records
        from repro.streaming.writers import JsonlEdgeLogWriter

        path = tmp_path / "audit.jsonl"
        with JsonlEdgeLogWriter(path) as writer:
            writer.append(1, 2)
        with JsonlEdgeLogWriter(path) as writer:  # a recovered process
            writer.append(3, 4)
        records, _ = read_jsonl_records(path)
        assert records == [(1, 2), (3, 4)]

    def test_explicit_flush_and_fsync(self, tmp_path):
        from repro.streaming.readers import read_jsonl_records
        from repro.streaming.writers import JsonlEdgeLogWriter

        path = tmp_path / "audit.jsonl"
        writer = JsonlEdgeLogWriter(path)
        try:
            writer.append(1, 2)
            writer.flush(sync=True)
            # Durable before close: a second reader sees the record now.
            records, _ = read_jsonl_records(path)
            assert records == [(1, 2)]
        finally:
            writer.close()
        with pytest.raises(ValueError, match="closed"):
            writer.append(3, 4)

    def test_torn_final_line_recovered_under_skip(self, tmp_path):
        from repro.streaming.readers import read_jsonl_records
        from repro.streaming.writers import JsonlEdgeLogWriter
        from repro.testing.faults import truncate_file

        path = tmp_path / "audit.jsonl"
        with JsonlEdgeLogWriter(path) as writer:
            for i in range(10):
                writer.append(i, i + 1, t=float(i))
        # Tear the final line mid-record, as a crash mid-append would.
        truncate_file(path, path.stat().st_size - 7)
        with pytest.raises(StreamFormatError):
            read_jsonl_records(path)  # "raise" is loud by default
        records, log = read_jsonl_records(path, on_bad_record="skip")
        assert records == [(i, i + 1, float(i)) for i in range(9)]
        assert log.skipped == 1
        assert log.quarantined == 0

    def test_quarantine_policy_keeps_damaged_lines(self, tmp_path):
        from repro.streaming.readers import read_jsonl_records

        path = tmp_path / "audit.jsonl"
        path.write_text('[1, 2]\nnot json at all\n{"u": 1}\n[3, 4, 0.5]\n')
        records, log = read_jsonl_records(path, on_bad_record="quarantine")
        assert records == [(1, 2), (3, 4, 0.5)]
        assert log.skipped == 2
        assert log.quarantined == 2
        assert log.quarantine_path is not None
        quarantined = log.quarantine_path.read_text().splitlines()
        assert quarantined == ["not json at all", '{"u": 1}']

    def test_blank_lines_are_not_damage(self, tmp_path):
        from repro.streaming.readers import read_jsonl_records

        path = tmp_path / "audit.jsonl"
        path.write_text("[1, 2]\n\n[2, 3]\n")
        records, log = read_jsonl_records(path)
        assert records == [(1, 2), (2, 3)]
        assert log.skipped == 0

    def test_wrong_arity_rejected(self, tmp_path):
        from repro.streaming.readers import read_jsonl_records

        path = tmp_path / "audit.jsonl"
        path.write_text("[1]\n[1, 2, 3, 4]\n[1, 2]\n")
        records, log = read_jsonl_records(path, on_bad_record="skip")
        assert records == [(1, 2)]
        assert log.skipped == 2
