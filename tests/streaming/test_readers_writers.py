"""Tests for edge-list file readers and writers."""

import gzip

import pytest

from repro.exceptions import StreamFormatError
from repro.streaming.readers import parse_edge_line, read_edge_list
from repro.streaming.writers import write_edge_list


class TestParseEdgeLine:
    def test_whitespace_separated(self):
        assert parse_edge_line("1\t2") == (1, 2)
        assert parse_edge_line("3 4") == (3, 4)

    def test_comma_delimiter(self):
        assert parse_edge_line("1,2", delimiter=",") == (1, 2)

    def test_comments_and_blank_lines(self):
        assert parse_edge_line("# comment") is None
        assert parse_edge_line("% comment") is None
        assert parse_edge_line("// comment") is None
        assert parse_edge_line("   ") is None

    def test_string_ids_preserved_when_not_int(self):
        assert parse_edge_line("alice bob") == ("alice", "bob")

    def test_as_int_false_keeps_strings(self):
        assert parse_edge_line("1 2", as_int=False) == ("1", "2")

    def test_extra_columns_ignored(self):
        assert parse_edge_line("1 2 1490283") == (1, 2)

    def test_single_field_raises(self):
        with pytest.raises(StreamFormatError):
            parse_edge_line("only-one-field")


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        path = tmp_path / "edges.tsv"
        edges = [(1, 2), (2, 3), (3, 4)]
        written = write_edge_list(edges, path, header="test file")
        assert written == 3
        stream = read_edge_list(path)
        assert stream.edges() == edges
        assert stream.name == "edges"

    def test_gzip_round_trip(self, tmp_path):
        path = tmp_path / "edges.tsv.gz"
        edges = [(10, 20), (30, 40)]
        write_edge_list(edges, path)
        with gzip.open(path, "rt") as handle:
            assert len(handle.readlines()) == 2
        assert read_edge_list(path).edges() == edges

    def test_reader_drops_self_loops_by_default(self, tmp_path):
        path = tmp_path / "loops.txt"
        path.write_text("1 1\n1 2\n")
        assert read_edge_list(path).edges() == [(1, 2)]

    def test_reader_custom_name(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("1 2\n")
        assert read_edge_list(path, name="custom").name == "custom"

    def test_comma_separated_file(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("# header\n1,2\n2,3\n")
        stream = read_edge_list(path, delimiter=",")
        assert stream.edges() == [(1, 2), (2, 3)]
