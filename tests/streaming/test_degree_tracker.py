"""Tests for the one-pass degree / wedge tracker."""

import math

from repro.graph.triangles import count_wedges
from repro.streaming.degree_tracker import DegreeTracker


class TestDegreeTracker:
    def test_degrees_match_aggregate_graph(self, medium_stream):
        tracker = DegreeTracker().process_stream(medium_stream)
        graph = medium_stream.to_graph()
        assert tracker.num_nodes == graph.num_nodes
        assert tracker.num_distinct_edges == graph.num_edges
        for node in graph.nodes():
            assert tracker.degree(node) == graph.degree(node)

    def test_wedge_count_matches_offline(self, medium_stream):
        tracker = DegreeTracker().process_stream(medium_stream)
        assert tracker.num_wedges == count_wedges(medium_stream.to_graph())

    def test_duplicates_and_self_loops_ignored(self):
        tracker = DegreeTracker().process_stream([(1, 2), (2, 1), (1, 1), (2, 3)])
        assert tracker.degree(1) == 1
        assert tracker.degree(2) == 2
        assert tracker.num_distinct_edges == 2
        assert tracker.edges_processed == 4

    def test_clique_wedges(self, clique_stream):
        tracker = DegreeTracker().process_stream(clique_stream)
        assert tracker.num_wedges == 12 * math.comb(11, 2)
        assert tracker.max_degree == 11

    def test_empty_tracker(self):
        tracker = DegreeTracker()
        assert tracker.num_nodes == 0
        assert tracker.num_wedges == 0
        assert tracker.max_degree == 0
        assert tracker.degree("missing") == 0

    def test_clustering_pipeline_with_estimate(self, clique_stream):
        """DegreeTracker + a triangle estimate reproduce the transitivity."""
        from repro.applications.clustering import estimate_global_clustering
        from repro.baselines.exact import ExactStreamingCounter

        tracker = DegreeTracker().process_stream(clique_stream)
        estimate = ExactStreamingCounter().run(clique_stream)
        assert estimate_global_clustering(estimate, tracker.num_wedges) == 1.0
