"""Tests for the deterministic fault-injection harness."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.testing.faults import (
    EXIT_STATUS,
    PLAN_ENV,
    PLAN_FILE,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    arm,
    corrupt_file,
    maybe_fail,
    truncate_file,
)


class TestSpecValidation:
    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultSpec(site="x", action="explode")

    def test_negative_skip_rejected(self):
        with pytest.raises(ValueError, match="skip"):
            FaultSpec(site="x", skip=-1)

    def test_zero_times_rejected(self):
        with pytest.raises(ValueError, match="times"):
            FaultSpec(site="x", times=0)

    def test_plan_json_round_trip(self):
        plan = FaultPlan(
            faults=(
                FaultSpec(site="a", action="io-error", match={"k": 1}, skip=2),
                FaultSpec(site="b", action="hang", delay_seconds=0.5),
            ),
            seed=42,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan


class TestMaybeFail:
    def test_noop_when_unarmed(self, monkeypatch):
        monkeypatch.delenv(PLAN_ENV, raising=False)
        maybe_fail("anything", chunk=3)  # must not raise

    def test_raise_action_fires_once(self):
        plan = FaultPlan(faults=(FaultSpec(site="s", action="raise"),))
        with arm(plan):
            with pytest.raises(InjectedFault):
                maybe_fail("s")
            maybe_fail("s")  # times=1 exhausted: passes

    def test_io_error_action(self):
        plan = FaultPlan(faults=(FaultSpec(site="s", action="io-error"),))
        with arm(plan):
            with pytest.raises(OSError):
                maybe_fail("s")

    def test_skip_counts_matching_calls(self):
        plan = FaultPlan(faults=(FaultSpec(site="s", skip=2),))
        with arm(plan):
            maybe_fail("s")
            maybe_fail("s")
            with pytest.raises(InjectedFault):
                maybe_fail("s")

    def test_times_fires_a_window_of_calls(self):
        plan = FaultPlan(faults=(FaultSpec(site="s", skip=1, times=2),))
        with arm(plan):
            maybe_fail("s")
            with pytest.raises(InjectedFault):
                maybe_fail("s")
            with pytest.raises(InjectedFault):
                maybe_fail("s")
            maybe_fail("s")

    def test_match_filters_by_key(self):
        plan = FaultPlan(
            faults=(FaultSpec(site="s", match={"chunk": 2, "group": 0}),)
        )
        with arm(plan):
            maybe_fail("s", chunk=1, group=0)  # wrong chunk
            maybe_fail("s", chunk=2, group=1)  # wrong group
            maybe_fail("s", chunk=2)  # missing group key
            with pytest.raises(InjectedFault):
                maybe_fail("s", chunk=2, group=0)

    def test_other_sites_never_fire(self):
        plan = FaultPlan(faults=(FaultSpec(site="s"),))
        with arm(plan):
            maybe_fail("other")
            with pytest.raises(InjectedFault):
                maybe_fail("s")

    def test_deterministic_across_reruns(self, tmp_path):
        plan = FaultPlan(faults=(FaultSpec(site="s", skip=1),))
        outcomes = []
        for run in range(2):
            directory = tmp_path / f"run{run}"
            fired = []
            with arm(plan, directory=directory):
                for _ in range(4):
                    try:
                        maybe_fail("s")
                        fired.append(False)
                    except InjectedFault:
                        fired.append(True)
            outcomes.append(fired)
        assert outcomes[0] == outcomes[1] == [False, True, False, False]


class TestArm:
    def test_env_is_set_and_restored(self, monkeypatch):
        monkeypatch.delenv(PLAN_ENV, raising=False)
        plan = FaultPlan()
        with arm(plan) as directory:
            assert os.environ[PLAN_ENV] == str(directory)
            assert (directory / PLAN_FILE).is_file()
        assert PLAN_ENV not in os.environ

    def test_previous_env_value_restored(self, monkeypatch):
        monkeypatch.setenv(PLAN_ENV, "/previous/plan")
        with arm(FaultPlan()):
            pass
        assert os.environ[PLAN_ENV] == "/previous/plan"

    def test_tokens_persist_in_explicit_directory(self, tmp_path):
        """Re-arming the same directory does not re-fire claimed faults."""
        plan = FaultPlan(faults=(FaultSpec(site="s"),))
        directory = tmp_path / "plan"
        with arm(plan, directory=directory):
            with pytest.raises(InjectedFault):
                maybe_fail("s")
        tokens = [p.name for p in directory.iterdir() if p.name != PLAN_FILE]
        assert tokens  # the claimed ordinal survives the block
        with arm(plan, directory=directory):
            maybe_fail("s")  # ordinal 0 already claimed: passes

    def test_cross_process_single_firing(self, tmp_path):
        """A fault claimed by a subprocess is not re-fired by the parent."""
        plan = FaultPlan(faults=(FaultSpec(site="s", action="exit"),))
        directory = tmp_path / "plan"
        plan.write(directory)
        env = dict(os.environ, **{PLAN_ENV: str(directory)})
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
        child = subprocess.run(
            [sys.executable, "-c",
             "from repro.testing.faults import maybe_fail; maybe_fail('s')"],
            env=env,
        )
        assert child.returncode == EXIT_STATUS
        with arm(plan, directory=directory):
            maybe_fail("s")  # already claimed by the child


class TestCorruptionHelpers:
    def test_truncate_file(self, tmp_path):
        path = tmp_path / "blob"
        path.write_bytes(b"0123456789")
        truncate_file(path, 4)
        assert path.read_bytes() == b"0123"
        truncate_file(path, -1)
        assert path.read_bytes() == b""

    def test_corrupt_file_is_deterministic(self, tmp_path):
        original = bytes(range(64))
        a, b = tmp_path / "a", tmp_path / "b"
        a.write_bytes(original)
        b.write_bytes(original)
        corrupt_file(a, seed=7)
        corrupt_file(b, seed=7)
        assert a.read_bytes() == b.read_bytes() != original

    def test_corrupt_file_other_seed_differs(self, tmp_path):
        original = bytes(range(64))
        a, b = tmp_path / "a", tmp_path / "b"
        a.write_bytes(original)
        b.write_bytes(original)
        corrupt_file(a, seed=7)
        corrupt_file(b, seed=8)
        assert a.read_bytes() != b.read_bytes()

    def test_corrupt_file_leaves_empty_files(self, tmp_path):
        path = tmp_path / "empty"
        path.write_bytes(b"")
        corrupt_file(path)
        assert path.read_bytes() == b""
