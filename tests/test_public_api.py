"""Sanity checks of the package's public surface.

These tests protect downstream users: everything advertised in ``__all__``
must be importable, the version string must be sane, and the top-level
convenience imports must actually be the objects from their home modules.
"""

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_is_semver_like(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    def test_convenience_imports_are_canonical(self):
        from repro.core.rept import ReptEstimator
        from repro.baselines.mascot import MascotEstimator

        assert repro.ReptEstimator is ReptEstimator
        assert repro.MascotEstimator is MascotEstimator

    def test_exceptions_hierarchy(self):
        from repro import exceptions

        for name in (
            "ConfigurationError",
            "StreamFormatError",
            "DatasetNotFoundError",
            "EstimatorStateError",
            "ExperimentError",
        ):
            exc = getattr(exceptions, name)
            assert issubclass(exc, exceptions.ReproError)


SUBPACKAGES = [
    "repro.core",
    "repro.baselines",
    "repro.graph",
    "repro.streaming",
    "repro.sampling",
    "repro.hashing",
    "repro.generators",
    "repro.metrics",
    "repro.analysis",
    "repro.experiments",
    "repro.applications",
    "repro.utils",
    "repro.durability",
    "repro.cluster",
    "repro.service",
]


class TestSubpackageExports:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackage_all_resolves(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name}"

    def test_estimators_share_the_streaming_interface(self):
        from repro.baselines.base import StreamingTriangleEstimator

        estimator_classes = [
            repro.ReptEstimator,
            repro.MascotEstimator,
            repro.TriestImprEstimator,
            repro.GpsInStreamEstimator,
            repro.DoulionEstimator,
            repro.ExactStreamingCounter,
            repro.IndependentEnsemble,
        ]
        for cls in estimator_classes:
            assert issubclass(cls, StreamingTriangleEstimator), cls
