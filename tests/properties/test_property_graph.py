"""Property-based tests (hypothesis) for the graph substrate."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.exact import ExactStreamingCounter
from repro.graph.adjacency import AdjacencyGraph
from repro.graph.eta import compute_pair_counts
from repro.graph.triangles import (
    count_triangles,
    count_triangles_per_node,
    count_wedges,
    enumerate_triangles,
)

# Strategy: small random edge lists over a bounded node universe.
edge_lists = st.lists(
    st.tuples(st.integers(0, 14), st.integers(0, 14)).filter(lambda e: e[0] != e[1]),
    min_size=0,
    max_size=60,
)


class TestTriangleCountingProperties:
    @given(edge_lists)
    @settings(max_examples=60, deadline=None)
    def test_local_counts_sum_to_three_times_global(self, edges):
        graph = AdjacencyGraph(edges)
        local = count_triangles_per_node(graph)
        assert sum(local.values()) == 3 * count_triangles(graph)

    @given(edge_lists)
    @settings(max_examples=60, deadline=None)
    def test_enumeration_matches_count(self, edges):
        graph = AdjacencyGraph(edges)
        assert len(list(enumerate_triangles(graph))) == count_triangles(graph)

    @given(edge_lists)
    @settings(max_examples=60, deadline=None)
    def test_triangles_bounded_by_wedges(self, edges):
        graph = AdjacencyGraph(edges)
        assert 3 * count_triangles(graph) <= count_wedges(graph)

    @given(edge_lists)
    @settings(max_examples=60, deadline=None)
    def test_adding_edges_never_decreases_triangles(self, edges):
        graph = AdjacencyGraph()
        previous = 0
        for u, v in edges:
            graph.add_edge(u, v)
            current = count_triangles(graph)
            assert current >= previous
            previous = current

    @given(edge_lists, st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_count_is_order_invariant(self, edges, rng):
        shuffled = list(edges)
        rng.shuffle(shuffled)
        assert count_triangles(AdjacencyGraph(edges)) == count_triangles(AdjacencyGraph(shuffled))


class TestEtaProperties:
    @given(edge_lists)
    @settings(max_examples=60, deadline=None)
    def test_eta_nonnegative_and_bounded(self, edges):
        counts = compute_pair_counts(edges, want_local=True)
        tau = counts.triangle_count
        assert counts.eta >= 0
        # Any pair of distinct triangles can be counted at most once.
        assert counts.eta <= math.comb(tau, 2) if tau >= 2 else counts.eta == 0

    @given(edge_lists)
    @settings(max_examples=60, deadline=None)
    def test_local_eta_nonnegative(self, edges):
        counts = compute_pair_counts(edges, want_local=True)
        assert all(value >= 0 for value in counts.eta_per_node.values())

    @given(edge_lists)
    @settings(max_examples=40, deadline=None)
    def test_exact_streaming_counter_matches_offline(self, edges):
        streaming = ExactStreamingCounter()
        streaming.process_stream(edges)
        graph = AdjacencyGraph(edges)
        assert streaming.estimate().global_count == count_triangles(graph)
