"""Property-based tests: monitor windows ≡ from-scratch re-ingestion.

The monitor's contract (see :mod:`repro.streaming.monitor`) is that every
emitted window's estimate is **bit-identical** to building a fresh
estimator and feeding it the window's records in the order the window
ingested them — merge-based advance is an execution strategy, never an
approximation.  Hypothesis drives duplicate-heavy timestamped streams
(small node universe, explicit self-loops) delivered out of order within a
bounded delay, through tumbling and sliding windows at several pane
granularities, for the merge-based REPT engine (complete groups, partial
group with η, and c < m) and for the factory engines (exact, TRIÈST).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.exact import ExactStreamingCounter
from repro.baselines.triest import TriestImprEstimator
from repro.core import ReptConfig, ReptEstimator
from repro.streaming.monitor import WindowedTriangleMonitor
from repro.utils.rng import derive_seed

SEED = 20260731

node_ids = st.integers(min_value=0, max_value=10)
# (u, v, coarse time, delivery delay): duplicates and self-loops are
# frequent on an 11-node universe; times land in [0, 36); delays up to 3s
# create bounded out-of-order delivery (timestamps keep their value — the
# *list order* is by delivery).
raw_records = st.lists(
    st.tuples(
        node_ids,
        node_ids,
        st.integers(min_value=0, max_value=119),
        st.integers(min_value=0, max_value=30),
    ),
    min_size=0,
    max_size=140,
)
# (window, slide, pane) in seconds — tumbling, sliding and fine panes.
window_shapes = st.sampled_from(
    [(12.0, 12.0, 12.0), (12.0, 12.0, 3.0), (12.0, 4.0, 4.0), (16.0, 4.0, 2.0)]
)

REPT_CONFIGS = {
    "alg1-partial": ReptConfig(m=4, c=3, seed=SEED),
    "alg2-eta": ReptConfig(m=3, c=8, seed=SEED),  # partial group: η tracked
    "alg2-complete": ReptConfig(m=4, c=8, seed=SEED, track_local=False),
}


def _deliveries(raw):
    """Turn the raw tuples into (u, v, t) in bounded out-of-order delivery."""
    stamped = [
        (u, v, tenth / 10.0 * 3.0, tenth / 10.0 * 3.0 + delay / 10.0)
        for u, v, tenth, delay in raw
    ]
    stamped.sort(key=lambda r: r[3])  # delivery order, not timestamp order
    return [(u, v, t) for u, v, t, _ in stamped]


def _run(monitor, records):
    closed = []
    for start in range(0, len(records), 23):
        closed.extend(monitor.ingest(records[start : start + 23]))
    closed.extend(monitor.flush())
    return closed


@pytest.mark.parametrize("keep_ring", [True, False], ids=["pane-ring", "live-only"])
@pytest.mark.parametrize("config_name", sorted(REPT_CONFIGS))
@given(raw=raw_records, shape=window_shapes)
@settings(max_examples=25, deadline=None)
def test_rept_windows_bit_identical_to_reingestion(config_name, keep_ring, raw, shape):
    config = REPT_CONFIGS[config_name]
    window, slide, pane = shape
    monitor = WindowedTriangleMonitor(
        window,
        slide_seconds=slide,
        pane_seconds=pane,
        config=config,
        allowed_lateness=3.0,
        keep_pane_deltas=keep_ring,
        record_replay=True,
    )
    results = _run(monitor, _deliveries(raw))
    for result in results:
        reference = ReptEstimator(config)
        reference.process_edges(result.replay)
        expected = reference.estimate()
        assert result.estimate.global_count == expected.global_count
        assert result.estimate.local_counts == expected.local_counts
        assert result.estimate.edges_stored == expected.edges_stored
        assert result.estimate.edges_processed == expected.edges_processed
        assert result.estimate.metadata.get("eta_hat") == expected.metadata.get(
            "eta_hat"
        )


@given(raw=raw_records, shape=window_shapes)
@settings(max_examples=20, deadline=None)
def test_factory_windows_bit_identical_to_reingestion(raw, shape):
    window, slide, pane = shape
    factories = {
        "exact": lambda s: ExactStreamingCounter(),
        "triest": lambda s: TriestImprEstimator(budget=16, seed=s),
    }
    for name, factory in factories.items():
        monitor = WindowedTriangleMonitor(
            window,
            slide_seconds=slide,
            pane_seconds=pane,
            estimator_factory=factory,
            seed=SEED,
            allowed_lateness=3.0,
            record_replay=True,
        )
        results = _run(monitor, _deliveries(raw))
        for result in results:
            reference = factory(derive_seed(SEED, "monitor-window", result.index))
            reference.process_edges(result.replay)
            expected = reference.estimate()
            assert result.estimate.global_count == expected.global_count, name
            assert result.estimate.local_counts == expected.local_counts, name
            assert result.estimate.edges_stored == expected.edges_stored, name


@given(raw=raw_records)
@settings(max_examples=15, deadline=None)
def test_zero_lateness_drops_are_counted_never_smuggled(raw):
    """With allowed_lateness=0 some deliveries are late; they must be
    counted as dropped and the admitted records must still reproduce the
    re-ingestion estimate exactly."""
    config = REPT_CONFIGS["alg2-eta"]
    monitor = WindowedTriangleMonitor(
        12.0, config=config, allowed_lateness=0.0, record_replay=True
    )
    records = _deliveries(raw)
    results = _run(monitor, records)
    admitted = sum(result.records for result in results)
    assert admitted + monitor.late_records == len(records)
    for result in results:
        reference = ReptEstimator(config)
        reference.process_edges(result.replay)
        assert result.estimate.global_count == reference.estimate().global_count
