"""Property-based tests: ``process_edges(batch)`` ≡ sequential ``process_edge``.

The batch-ingestion contract (see
:meth:`repro.baselines.base.StreamingTriangleEstimator.process_edges`) is
strict equivalence: for every estimator, feeding the stream through the
batch API in arbitrary chunkings must produce a :class:`TriangleEstimate`
identical — global count, local counters, η metadata, edges processed and
stored — to feeding it edge by edge.  Hypothesis drives random streams
containing duplicates and self-loops through REPT (which overrides the
batch path with the vectorized pipeline) and every streaming baseline
(which inherit the fallback loop), with random batch sizes.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    DoulionEstimator,
    ExactStreamingCounter,
    GpsInStreamEstimator,
    MascotEstimator,
    TriestBaseEstimator,
    TriestImprEstimator,
    parallelize,
)
from repro.baselines.single_threaded import make_single_threaded_triest
from repro.core import DriverBackedRept, ReptConfig, ReptEstimator

# Streams over a small node universe: plenty of duplicates and triangles,
# plus explicit self-loops (u == v pairs are allowed by the strategy).
node_ids = st.integers(min_value=0, max_value=12)
streams = st.lists(st.tuples(node_ids, node_ids), min_size=0, max_size=120)
batch_sizes = st.integers(min_value=1, max_value=50)

SEED = 20240731


def _factories():
    return {
        "exact": lambda: ExactStreamingCounter(),
        "mascot": lambda: MascotEstimator(0.5, seed=SEED),
        "doulion": lambda: DoulionEstimator(0.5, seed=SEED),
        "triest": lambda: TriestImprEstimator(20, seed=SEED),
        "triest-base": lambda: TriestBaseEstimator(20, seed=SEED),
        "gps": lambda: GpsInStreamEstimator(20, seed=SEED),
        "triest-s": lambda: make_single_threaded_triest(0.25, 3, 120, seed=SEED),
        "ensemble-mascot": lambda: parallelize("mascot", 3, 0.5, 120, seed=SEED),
        "rept-alg1": lambda: ReptEstimator(ReptConfig(m=4, c=3, seed=SEED)),
        "rept-alg2-eta": lambda: ReptEstimator(ReptConfig(m=3, c=8, seed=SEED)),
        "rept-untracked": lambda: ReptEstimator(
            ReptConfig(m=4, c=8, seed=SEED, track_local=False)
        ),
        "rept-driver": lambda: DriverBackedRept(
            ReptConfig(m=3, c=5, seed=SEED), backend="chunked-serial", chunk_size=17
        ),
    }


def assert_estimates_identical(reference, batched, label):
    __tracebackhide__ = True
    assert batched.global_count == reference.global_count, label
    assert batched.local_counts == reference.local_counts, label
    assert batched.edges_processed == reference.edges_processed, label
    assert batched.edges_stored == reference.edges_stored, label
    assert batched.metadata == reference.metadata, label


@pytest.mark.parametrize("name", sorted(_factories()))
@given(edges=streams, batch_size=batch_sizes)
@settings(max_examples=25, deadline=None)
def test_batched_ingestion_is_bit_identical(name, edges, batch_size):
    factory = _factories()[name]
    reference = factory()
    for u, v in edges:
        reference.process_edge(u, v)

    batched = factory()
    for start in range(0, len(edges), batch_size):
        batched.process_edges(edges[start : start + batch_size])

    assert_estimates_identical(reference.estimate(), batched.estimate(), name)


@given(edges=streams, batch_size=batch_sizes)
@settings(max_examples=25, deadline=None)
def test_process_stream_batch_size_matches_run(edges, batch_size):
    """`run(..., batch_size=...)` is the same contract end to end."""
    reference = ReptEstimator(ReptConfig(m=3, c=7, seed=SEED)).run(edges)
    batched = ReptEstimator(ReptConfig(m=3, c=7, seed=SEED)).run(
        edges, batch_size=batch_size
    )
    assert_estimates_identical(reference, batched, "run(batch_size)")


@given(edges=streams, pivot=st.integers(min_value=0, max_value=120))
@settings(max_examples=25, deadline=None)
def test_mixing_per_edge_and_batch_paths(edges, pivot):
    """Interleaving the two ingestion paths on one estimator stays exact."""
    pivot = min(pivot, len(edges))
    reference = ReptEstimator(ReptConfig(m=3, c=8, seed=SEED))
    for u, v in edges:
        reference.process_edge(u, v)

    mixed = ReptEstimator(ReptConfig(m=3, c=8, seed=SEED))
    mixed.process_edges(edges[:pivot])
    for u, v in edges[pivot : pivot + 10]:
        mixed.process_edge(u, v)
    mixed.process_edges(edges[pivot + 10 :])

    assert_estimates_identical(reference.estimate(), mixed.estimate(), "mixed paths")


@given(edges=streams)
@settings(max_examples=20, deadline=None)
def test_self_loops_count_but_do_not_update(edges):
    """Batches respect the count-then-skip contract for self-loops."""
    estimator = ReptEstimator(ReptConfig(m=2, c=2, seed=SEED))
    estimator.process_edges(edges)
    estimate = estimator.estimate()
    assert estimate.edges_processed == len(edges)
    loops = sum(1 for u, v in edges if u == v)
    assert estimator.edges_stored <= max(0, len(edges) - loops)
    assert not math.isnan(estimate.global_count)
