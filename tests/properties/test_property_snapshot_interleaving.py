"""Property: read-path calls interleaved with ingestion never perturb state.

The service serves queries (estimates) and checkpoints (snapshots /
portable state) between ingest frames of a live estimator.  The contract
this file pins down: interleaving those *read* operations with batched
ingestion must leave every subsequent result bit-identical to a run that
never queried — and every mid-stream estimate must equal the estimate of
a fresh estimator fed exactly that stream prefix.

Hypothesis drives random streams (duplicates and self-loops included)
chopped into random frame sizes, reading after every frame, against REPT
(``GroupStateSet`` — the service's REPT engine substrate), the exact
counter and TRIÈST-IMPR.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.exact import ExactStreamingCounter
from repro.baselines.triest import TriestImprEstimator
from repro.core import ReptConfig
from repro.core.state import GroupStateSet

node_ids = st.integers(min_value=0, max_value=10)
streams = st.lists(st.tuples(node_ids, node_ids), min_size=0, max_size=80)
frame_sizes = st.integers(min_value=1, max_value=17)

SEED = 20260808

CONFIG_KWARGS = dict(m=3, c=7, seed=SEED)  # partial group + η tracking


def _frames(stream, frame_size):
    return [stream[i : i + frame_size] for i in range(0, len(stream), frame_size)]


def _estimate_key(estimate):
    """Full comparable identity of a TriangleEstimate (bit-level)."""
    return (
        estimate.global_count,
        sorted(estimate.local_counts.items()),
        estimate.edges_processed,
        estimate.edges_stored,
        sorted(estimate.metadata.items()),
    )


class TestReptStateSet:
    @given(stream=streams, frame_size=frame_sizes)
    @settings(max_examples=40, deadline=None)
    def test_snapshot_and_estimate_between_frames_change_nothing(
        self, stream, frame_size
    ):
        probed = GroupStateSet(ReptConfig(**CONFIG_KWARGS))
        silent = GroupStateSet(ReptConfig(**CONFIG_KWARGS))
        probed_n = silent_n = 0
        for frame in _frames(stream, frame_size):
            probed_n += probed.process_edges(frame)
            silent_n += silent.process_edges(frame)
            # Read path after every frame: snapshot, portable state, estimate.
            probed.snapshot()
            probed.portable_state()
            probed.estimate(probed_n)
        assert probed_n == silent_n
        assert _estimate_key(probed.estimate(probed_n)) == _estimate_key(
            silent.estimate(silent_n)
        )
        assert probed.snapshot() == silent.snapshot()

    @given(stream=streams, frame_size=frame_sizes)
    @settings(max_examples=40, deadline=None)
    def test_mid_stream_estimates_equal_serial_prefix_runs(self, stream, frame_size):
        live = GroupStateSet(ReptConfig(**CONFIG_KWARGS))
        delivered = 0
        consumed = 0
        for frame in _frames(stream, frame_size):
            delivered += live.process_edges(frame)
            consumed += len(frame)
            fresh = GroupStateSet(ReptConfig(**CONFIG_KWARGS))
            for u, v in stream[:consumed]:  # strictly per-edge serial
                fresh.process_edge(u, v)
            # process_edges counts every record (self-loops included), so
            # the delivered count equals the records consumed so far.
            assert delivered == consumed
            assert _estimate_key(live.estimate(delivered)) == _estimate_key(
                fresh.estimate(consumed)
            )

    @given(stream=streams, frame_size=frame_sizes)
    @settings(max_examples=40, deadline=None)
    def test_portable_round_trip_mid_stream_continues_identically(
        self, stream, frame_size
    ):
        """Checkpoint/restore between frames, then finish: bit-identical."""
        frames = _frames(stream, frame_size)
        half = len(frames) // 2

        straight = GroupStateSet(ReptConfig(**CONFIG_KWARGS))
        straight_n = 0
        for frame in frames:
            straight_n += straight.process_edges(frame)

        hopped = GroupStateSet(ReptConfig(**CONFIG_KWARGS))
        hopped_n = 0
        for frame in frames[:half]:
            hopped_n += hopped.process_edges(frame)
        resumed = GroupStateSet(ReptConfig(**CONFIG_KWARGS))
        resumed.restore_portable(hopped.portable_state())
        for frame in frames[half:]:
            hopped_n += resumed.process_edges(frame)

        assert _estimate_key(resumed.estimate(hopped_n)) == _estimate_key(
            straight.estimate(straight_n)
        )


class TestBaselineEstimators:
    @given(stream=streams, frame_size=frame_sizes)
    @settings(max_examples=40, deadline=None)
    def test_exact_counter_estimates_between_batches_change_nothing(
        self, stream, frame_size
    ):
        probed = ExactStreamingCounter()
        serial = ExactStreamingCounter()
        for frame in _frames(stream, frame_size):
            probed.process_edges(frame)
            probed.estimate()  # read between frames
            for u, v in frame:
                serial.process_edge(u, v)
            # Mid-stream agreement with the serial prefix run.
            assert _estimate_key(probed.estimate()) == _estimate_key(
                serial.estimate()
            )

    @given(stream=streams, frame_size=frame_sizes)
    @settings(max_examples=40, deadline=None)
    def test_triest_estimates_between_batches_change_nothing(
        self, stream, frame_size
    ):
        probed = TriestImprEstimator(12, seed=SEED)
        serial = TriestImprEstimator(12, seed=SEED)
        for frame in _frames(stream, frame_size):
            probed.process_edges(frame)
            probed.estimate()  # read between frames must not touch the RNG
            for u, v in frame:
                serial.process_edge(u, v)
            assert _estimate_key(probed.estimate()) == _estimate_key(
                serial.estimate()
            )
