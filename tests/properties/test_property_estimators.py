"""Property-based tests of the streaming estimators."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.exact import ExactStreamingCounter
from repro.baselines.mascot import MascotEstimator
from repro.baselines.triest import TriestImprEstimator
from repro.core.config import ReptConfig
from repro.core.rept import ReptEstimator

edge_lists = st.lists(
    st.tuples(st.integers(0, 12), st.integers(0, 12)).filter(lambda e: e[0] != e[1]),
    min_size=0,
    max_size=50,
)

# MASCOT / TRIÈST / REPT assume each edge occurs once on the stream (the
# paper's model); exactness invariants therefore use duplicate-free streams.
unique_edge_lists = st.lists(
    st.tuples(st.integers(0, 12), st.integers(0, 12)).filter(lambda e: e[0] != e[1]),
    min_size=0,
    max_size=50,
    unique_by=lambda e: tuple(sorted(e)),
)


class TestEstimatorInvariants:
    @given(unique_edge_lists, st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_rept_full_sampling_is_exact(self, edges, seed):
        """m = 1, c = 1 stores everything: REPT must equal the exact count."""
        exact = ExactStreamingCounter()
        exact.process_stream(edges)
        rept = ReptEstimator(ReptConfig(m=1, c=1, seed=seed))
        rept.process_stream(edges)
        assert rept.estimate().global_count == exact.estimate().global_count

    @given(unique_edge_lists, st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_mascot_probability_one_is_exact(self, edges, seed):
        exact = ExactStreamingCounter()
        exact.process_stream(edges)
        mascot = MascotEstimator(1.0, seed=seed)
        mascot.process_stream(edges)
        assert mascot.estimate().global_count == exact.estimate().global_count

    @given(edge_lists, st.integers(2, 6), st.integers(1, 12), st.integers(0, 1000))
    @settings(max_examples=50, deadline=None)
    def test_rept_estimates_are_finite_and_nonnegative(self, edges, m, c, seed):
        estimator = ReptEstimator(ReptConfig(m=m, c=c, seed=seed))
        estimator.process_stream(edges)
        estimate = estimator.estimate()
        assert estimate.global_count >= 0
        assert estimate.global_count == estimate.global_count  # not NaN
        assert all(value >= 0 for value in estimate.local_counts.values())

    @given(edge_lists, st.integers(2, 6), st.integers(1, 12), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_rept_local_counts_only_for_seen_nodes(self, edges, m, c, seed):
        estimator = ReptEstimator(ReptConfig(m=m, c=c, seed=seed))
        estimator.process_stream(edges)
        nodes = {node for edge in edges for node in edge}
        assert set(estimator.estimate().local_counts) <= nodes

    @given(edge_lists, st.integers(1, 30), st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_triest_budget_respected_on_any_stream(self, edges, budget, seed):
        estimator = TriestImprEstimator(budget, seed=seed)
        estimator.process_stream(edges)
        assert estimator.edges_stored <= budget

    @given(edge_lists, st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_duplicate_edges_do_not_change_exact_count(self, edges, seed):
        exact_once = ExactStreamingCounter()
        exact_once.process_stream(edges)
        exact_twice = ExactStreamingCounter()
        exact_twice.process_stream(edges + edges)
        assert exact_once.estimate().global_count == exact_twice.estimate().global_count
