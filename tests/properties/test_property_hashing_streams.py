"""Property-based tests for hashing and stream transforms."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import make_hash_function
from repro.streaming.edge_stream import EdgeStream
from repro.streaming.transforms import deduplicate_edges, relabel_nodes, shuffle_stream
from repro.types import Edge, canonical_edge

node_ids = st.one_of(st.integers(0, 1000), st.text(min_size=1, max_size=5))
edge_pairs = st.tuples(node_ids, node_ids).filter(lambda e: e[0] != e[1])
edge_lists = st.lists(edge_pairs, min_size=0, max_size=40)


class TestCanonicalEdgeProperties:
    @given(edge_pairs)
    def test_canonical_edge_is_symmetric(self, pair):
        u, v = pair
        assert canonical_edge(u, v) == canonical_edge(v, u)

    @given(edge_pairs)
    def test_edge_dataclass_equality(self, pair):
        u, v = pair
        assert Edge(u, v) == Edge(v, u)
        assert hash(Edge(u, v)) == hash(Edge(v, u))


class TestHashProperties:
    @given(edge_pairs, st.integers(1, 64), st.integers(0, 2**31))
    @settings(max_examples=80, deadline=None)
    def test_bucket_in_range_and_symmetric(self, pair, buckets, seed):
        u, v = pair
        h = make_hash_function("splitmix", buckets, seed=seed)
        bucket = h.bucket(u, v)
        assert 0 <= bucket < buckets
        assert bucket == h.bucket(v, u)

    @given(edge_pairs, st.integers(1, 16), st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_tabulation_in_range(self, pair, buckets, seed):
        u, v = pair
        h = make_hash_function("tabulation", buckets, seed=seed)
        assert 0 <= h.bucket(u, v) < buckets


class TestStreamTransformProperties:
    @given(edge_lists, st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_shuffle_preserves_multiset(self, edges, seed):
        stream = EdgeStream(edges, validate=False)
        shuffled = shuffle_stream(stream, seed=seed)
        assert sorted(map(str, shuffled.edges())) == sorted(map(str, edges))

    @given(edge_lists)
    @settings(max_examples=40, deadline=None)
    def test_deduplicate_is_idempotent(self, edges):
        stream = EdgeStream(edges, validate=False)
        once = deduplicate_edges(stream)
        twice = deduplicate_edges(once)
        assert once.edges() == twice.edges()

    @given(edge_lists)
    @settings(max_examples=40, deadline=None)
    def test_relabel_preserves_structure(self, edges):
        stream = EdgeStream(edges, validate=False)
        relabeled = relabel_nodes(stream)
        assert len(relabeled) == len(stream)
        # The relabeled aggregate graph has the same number of nodes/edges.
        assert relabeled.to_graph().num_nodes == stream.to_graph().num_nodes
        assert relabeled.to_graph().num_edges == stream.to_graph().num_edges
