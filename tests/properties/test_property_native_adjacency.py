"""Property-based tests: array-backed adjacency ≡ dict-backed groups.

:class:`~repro.core.adjacency.NativeProcessorGroup` replaces the
dict-of-sets adjacency of :class:`~repro.core.state.ProcessorGroup` with
flat numpy columns (intrusive singly-linked neighbour lists over a shared
pool) so the compiled kernels can walk them.  The replacement is required
to be observationally identical: stored edges, τ/η counters, per-node
locals, summaries, snapshots and merges must all agree with the dict
implementation on any stream — including duplicate-heavy ones and any
chunking of the ingestion calls.  Hypothesis drives random streams and
random chunk boundaries through both implementations side by side; the
array growth paths are exercised naturally (capacities start small) and
explicitly via a model-checked ``append_edge`` sequence.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adjacency import GroupArrays, NativeProcessorGroup
from repro.core.kernel import provider_available
from repro.core.state import ProcessorGroup
from repro.hashing import make_hash_function

pytestmark = pytest.mark.skipif(
    not provider_available("cc"), reason="no C compiler available"
)

SEED = 20240808

# Small node universe => duplicates and triangles are common.  Self-loops
# are excluded: the group-level API contract (process_edge) assumes the
# caller filtered them, as GroupStateSet and the encode pipeline both do.
node_ids = st.integers(min_value=0, max_value=15)
edges_strategy = st.lists(
    st.tuples(node_ids, node_ids).filter(lambda e: e[0] != e[1]),
    min_size=0,
    max_size=150,
)
#: (m, group_size) with partial groups (group_size < m) and η tracking on
#: the full-size ones — both closure variants of the kernel.
shapes = st.sampled_from([(1, 1), (3, 3), (4, 2), (5, 5), (6, 3), (2, 1)])
chunk_seeds = st.integers(min_value=0, max_value=2**16)


def _pair(m, group_size, track_eta=True, track_local=True):
    """One dict-backed and one array-backed group with identical hashing."""
    python = ProcessorGroup(
        hash_function=make_hash_function("splitmix", m, seed=SEED),
        group_size=group_size,
        m=m,
        track_local=track_local,
        track_eta=track_eta,
    )
    native = NativeProcessorGroup(
        hash_function=make_hash_function("splitmix", m, seed=SEED),
        group_size=group_size,
        m=m,
        track_local=track_local,
        track_eta=track_eta,
        provider="cc",
    )
    return python, native


def _chunks(edges, seed):
    """Split ``edges`` at random boundaries."""
    rng = random.Random(seed)
    out, i = [], 0
    while i < len(edges):
        n = rng.randrange(1, 40)
        out.append(edges[i : i + n])
        i += n
    return out


def _assert_groups_equal(python: ProcessorGroup, native: NativeProcessorGroup):
    assert sorted(python.stored_edges()) == sorted(native.stored_edges())
    assert python.tau_values() == native.tau_values()
    assert python.eta_values() == native.eta_values()
    assert python.total_edges_stored() == native.total_edges_stored()
    assert python.local_tau_sums() == native.local_tau_sums()
    assert python.local_eta_sums() == native.local_eta_sums()
    assert python.summarise(True) == native.summarise(True)
    assert python.summarise(False) == native.summarise(False)


class TestIngestionEquivalence:
    @given(edges=edges_strategy, shape=shapes, chunk_seed=chunk_seeds)
    @settings(max_examples=40, deadline=None)
    def test_chunked_batches_match_dict_impl(self, edges, shape, chunk_seed):
        m, group_size = shape
        python, native = _pair(m, group_size)
        for chunk in _chunks(edges, chunk_seed):
            python.process_edges(chunk, seen=None)
            native.process_edges(chunk, seen=None)
        _assert_groups_equal(python, native)

    @given(edges=edges_strategy, shape=shapes)
    @settings(max_examples=40, deadline=None)
    def test_per_edge_path_matches_dict_impl(self, edges, shape):
        m, group_size = shape
        python, native = _pair(m, group_size)
        for u, v in edges:
            python.process_edge(u, v)
            native.process_edge(u, v)
        _assert_groups_equal(python, native)

    @given(edges=edges_strategy, shape=shapes)
    @settings(max_examples=25, deadline=None)
    def test_untracked_locals_match(self, edges, shape):
        m, group_size = shape
        python, native = _pair(m, group_size, track_eta=False, track_local=False)
        python.process_edges(edges, seen=None)
        native.process_edges(edges, seen=None)
        assert python.summarise(True) == native.summarise(True)
        assert sorted(python.stored_edges()) == sorted(native.stored_edges())


class TestSnapshotAndMerge:
    @given(edges=edges_strategy, shape=shapes, cut=st.integers(0, 150))
    @settings(max_examples=30, deadline=None)
    def test_snapshot_restore_roundtrip(self, edges, shape, cut):
        """Mid-stream native snapshots restore into either implementation
        and both finish identically."""
        m, group_size = shape
        cut = min(cut, len(edges))
        python, native = _pair(m, group_size)
        native.process_edges(edges[:cut], seen=None)
        snapshot = native.snapshot()
        python.restore(snapshot)
        resumed = _pair(m, group_size)[1]
        resumed.restore(snapshot)
        python.process_edges(edges[cut:], seen=None)
        resumed.process_edges(edges[cut:], seen=None)
        _assert_groups_equal(python, resumed)

    @given(edges=edges_strategy, shape=shapes, cut=st.integers(0, 150))
    @settings(max_examples=30, deadline=None)
    def test_merge_snapshot_matches_dict_impl(self, edges, shape, cut):
        """Folding the same later-chunk snapshot into identically-prepared
        accumulators gives the same state in both implementations."""
        m, group_size = shape
        cut = min(cut, len(edges))
        python, native = _pair(m, group_size)
        python.process_edges(edges[:cut], seen=None)
        native.process_edges(edges[:cut], seen=None)
        # The later chunk, counted against the seeded cross-chunk adjacency.
        later = ProcessorGroup(
            hash_function=make_hash_function("splitmix", m, seed=SEED),
            group_size=group_size,
            m=m,
            track_local=True,
            track_eta=True,
        )
        later.seed_adjacency(python.stored_edges())
        later.process_edges(edges[cut:], seen=None)
        snapshot = later.snapshot()
        python.merge_snapshot(snapshot)
        native.merge_snapshot(snapshot)
        _assert_groups_equal(python, native)

    @given(edges=edges_strategy, shape=shapes, cut=st.integers(0, 150))
    @settings(max_examples=30, deadline=None)
    def test_seed_adjacency_interop(self, edges, shape, cut):
        """Groups seeded from the other implementation's stored edges
        continue identically — the chunked counting phase is kernel-free."""
        m, group_size = shape
        cut = min(cut, len(edges))
        source = _pair(m, group_size)[1]
        source.process_edges(edges[:cut], seen=None)
        stored = source.stored_edges()
        python, native = _pair(m, group_size)
        python.seed_adjacency(stored)
        native.seed_adjacency(stored)
        assert sorted(python.stored_edges()) == sorted(native.stored_edges())
        # Seeding populates the adjacency only — counters stay zero.
        assert python.total_edges_stored() == native.total_edges_stored() == 0
        python.process_edges(edges[cut:], seen=None)
        native.process_edges(edges[cut:], seen=None)
        assert python.tau_values() == native.tau_values()
        assert python.eta_values() == native.eta_values()
        assert python.summarise(True) == native.summarise(True)


class TestGroupArraysModel:
    """Model-check the raw array layout against a plain dict under growth."""

    @given(
        ops=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),  # slot
                st.integers(min_value=0, max_value=400),  # u (forces growth)
                st.integers(min_value=0, max_value=400),  # v
            ),
            min_size=0,
            max_size=80,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_append_edge_matches_model(self, ops):
        arrays = GroupArrays(group_size=4, track_local=True, track_eta=True)
        model = {slot: {} for slot in range(4)}
        stored = set()
        for slot, u, v in ops:
            if u == v:
                continue
            a, b = (u, v) if u < v else (v, u)
            if (slot, a, b) in stored:
                assert arrays.find_edge(slot, a, b) is not None
                continue
            arrays.ensure_nodes(max(u, v) + 1)
            assert arrays.find_edge(slot, a, b) is None
            arrays.ensure_edges(1)
            arrays.append_edge(u, v, slot)
            stored.add((slot, a, b))
            model[slot].setdefault(u, set()).add(v)
            model[slot].setdefault(v, set()).add(u)
        assert arrays.n_edges == len(stored)
        for slot in range(4):
            got = {
                node: set(neigh)
                for node, neigh in arrays.adjacency_dict(slot).items()
            }
            assert got == model[slot]

    @given(
        edges=edges_strategy,
        shape=shapes,
        cut=st.integers(0, 150),
    )
    @settings(max_examples=20, deadline=None)
    def test_pickle_roundtrip_preserves_state(self, edges, shape, cut):
        """Pickling drops the FFI call cache but never the counters —
        resumed ingestion after unpickle stays bit-identical."""
        import pickle

        m, group_size = shape
        cut = min(cut, len(edges))
        python, native = _pair(m, group_size)
        python.process_edges(edges[:cut], seen=None)
        native.process_edges(edges[:cut], seen=None)
        native = pickle.loads(pickle.dumps(native))
        python.process_edges(edges[cut:], seen=None)
        native.process_edges(edges[cut:], seen=None)
        _assert_groups_equal(python, native)
