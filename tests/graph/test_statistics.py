"""Tests for GraphStatistics / compute_statistics."""

import math

import pytest

from repro.graph.statistics import compute_statistics
from repro.generators.planted import planted_clique_stream, planted_triangles_stream


class TestComputeStatistics:
    def test_clique_statistics(self):
        n = 10
        stream = planted_clique_stream(n)
        stats = compute_statistics(stream.edges(), name="clique")
        assert stats.name == "clique"
        assert stats.num_nodes == n
        assert stats.num_edges == n * (n - 1) // 2
        assert stats.num_triangles == math.comb(n, 3)
        assert stats.transitivity == pytest.approx(1.0)
        assert stats.max_degree == n - 1
        assert stats.mean_degree == pytest.approx(n - 1)

    def test_book_statistics(self):
        k = 6
        stream = planted_triangles_stream(k, shared_edge=True)
        stats = compute_statistics(stream.edges())
        assert stats.num_triangles == k
        assert stats.eta == math.comb(k, 2)
        assert stats.local_triangles[0] == k
        assert stats.eta_per_node[0] == math.comb(k, 2)

    def test_eta_to_tau_ratio(self):
        stream = planted_triangles_stream(4, shared_edge=True)
        stats = compute_statistics(stream.edges())
        assert stats.eta_to_tau_ratio() == pytest.approx(6 / 4)

    def test_ratio_with_no_triangles(self):
        stats = compute_statistics([(0, 1), (1, 2)])
        assert stats.eta_to_tau_ratio() == 0.0

    def test_mascot_variance_terms(self):
        stream = planted_triangles_stream(5, shared_edge=True)
        stats = compute_statistics(stream.edges())
        terms = stats.mascot_variance_terms(0.1)
        assert terms["tau_term"] == pytest.approx(5 * (100 - 1))
        assert terms["covariance_term"] == pytest.approx(2 * 10 * (10 - 1))

    def test_mascot_variance_terms_invalid_p(self):
        stats = compute_statistics([(0, 1), (1, 2), (0, 2)])
        with pytest.raises(ValueError):
            stats.mascot_variance_terms(0.0)
        with pytest.raises(ValueError):
            stats.mascot_variance_terms(1.5)

    def test_as_table_row(self):
        stats = compute_statistics([(0, 1), (1, 2), (0, 2)], name="t")
        assert stats.as_table_row() == ["t", 3, 3, 1]

    def test_local_counts_match_global(self, medium_stream):
        stats = compute_statistics(medium_stream.edges())
        assert sum(stats.local_triangles.values()) == 3 * stats.num_triangles
