"""Tests for the AdjacencyGraph substrate."""

import pytest

from repro.graph.adjacency import AdjacencyGraph


class TestMutation:
    def test_add_edge_counts_once(self):
        graph = AdjacencyGraph()
        assert graph.add_edge(1, 2) is True
        assert graph.add_edge(2, 1) is False  # same undirected edge
        assert graph.num_edges == 1
        assert graph.num_nodes == 2

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            AdjacencyGraph().add_edge(3, 3)

    def test_remove_edge(self):
        graph = AdjacencyGraph([(1, 2), (2, 3)])
        assert graph.remove_edge(1, 2) is True
        assert graph.remove_edge(1, 2) is False
        assert graph.num_edges == 1
        assert not graph.has_edge(1, 2)

    def test_remove_keeps_nodes(self):
        graph = AdjacencyGraph([(1, 2)])
        graph.remove_edge(1, 2)
        assert graph.has_node(1) and graph.has_node(2)

    def test_add_node(self):
        graph = AdjacencyGraph()
        graph.add_node("solo")
        assert graph.has_node("solo")
        assert graph.degree("solo") == 0

    def test_clear(self):
        graph = AdjacencyGraph([(1, 2), (3, 4)])
        graph.clear()
        assert graph.num_nodes == 0 and graph.num_edges == 0


class TestQueries:
    def test_neighbors_and_degree(self):
        graph = AdjacencyGraph([(1, 2), (1, 3), (1, 4)])
        assert graph.neighbors(1) == {2, 3, 4}
        assert graph.degree(1) == 3
        assert graph.degree(99) == 0
        assert graph.neighbors(99) == frozenset()

    def test_common_neighbors(self):
        graph = AdjacencyGraph([(1, 3), (2, 3), (1, 4), (2, 4), (1, 5)])
        assert graph.common_neighbors(1, 2) == {3, 4}
        assert graph.common_neighbors(1, 99) == set()

    def test_edges_iterates_each_once(self):
        edges = [(1, 2), (2, 3), (3, 1), (3, 4)]
        graph = AdjacencyGraph(edges)
        listed = sorted(graph.edges())
        assert listed == sorted([(1, 2), (2, 3), (1, 3), (3, 4)])

    def test_contains_protocol(self):
        graph = AdjacencyGraph([(1, 2)])
        assert (1, 2) in graph
        assert (2, 1) in graph
        assert 1 in graph
        assert (1, 3) not in graph
        assert 7 not in graph

    def test_len_and_repr(self):
        graph = AdjacencyGraph([(1, 2), (2, 3)])
        assert len(graph) == 3
        assert "nodes=3" in repr(graph)

    def test_degree_sequence(self):
        graph = AdjacencyGraph([(1, 2), (1, 3)])
        assert graph.degree_sequence() == {1: 2, 2: 1, 3: 1}


class TestCopyAndConstructors:
    def test_copy_is_independent(self):
        graph = AdjacencyGraph([(1, 2)])
        clone = graph.copy()
        clone.add_edge(2, 3)
        assert graph.num_edges == 1
        assert clone.num_edges == 2

    def test_from_edges_collapses_duplicates(self):
        graph = AdjacencyGraph.from_edges([(1, 2), (2, 1), (1, 2)])
        assert graph.num_edges == 1

    def test_from_stream(self, clique_stream):
        graph = AdjacencyGraph.from_stream(clique_stream)
        assert graph.num_nodes == 12
        assert graph.num_edges == 12 * 11 // 2
