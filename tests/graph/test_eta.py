"""Tests for the exact η / η_v computation.

η depends on the *stream order*: an unordered pair of distinct triangles
counts iff the shared edge is not the last edge of either triangle.
"""

import math

import pytest

from repro.graph.eta import compute_eta, compute_eta_per_node, compute_pair_counts
from repro.generators.planted import planted_triangles_stream


class TestGlobalEta:
    def test_single_triangle_has_no_pairs(self):
        assert compute_eta([(0, 1), (1, 2), (0, 2)]) == 0

    def test_disjoint_triangles_have_zero_eta(self):
        stream = planted_triangles_stream(10, shared_edge=False)
        assert compute_eta(stream.edges()) == 0

    def test_book_with_shared_edge_first(self):
        # Shared edge (0,1) arrives first -> it is a non-last edge of every
        # triangle -> every pair of triangles qualifies.
        k = 7
        stream = planted_triangles_stream(k, shared_edge=True)
        assert compute_eta(stream.edges()) == math.comb(k, 2)

    def test_shared_edge_last_gives_zero(self):
        # Two triangles sharing edge (0,1), which arrives LAST: the shared
        # edge is the last edge of both triangles, so the pair does not count.
        edges = [(0, 2), (1, 2), (0, 3), (1, 3), (0, 1)]
        assert compute_eta(edges) == 0

    def test_shared_edge_middle(self):
        # Triangle A = {0,1,2} with (0,1) second; triangle B = {0,1,3} with
        # (0,1) not last.  Shared edge is non-last for both -> eta = 1.
        edges = [(0, 2), (0, 1), (1, 2), (0, 3), (1, 3)]
        assert compute_eta(edges) == 1

    def test_order_sensitivity(self):
        # Same graph, different arrival orders give different eta.
        book_first = planted_triangles_stream(4, shared_edge=True).edges()
        shared_last = [edge for edge in book_first if edge != (0, 1)] + [(0, 1)]
        assert compute_eta(book_first) == math.comb(4, 2)
        assert compute_eta(shared_last) == 0

    def test_duplicate_edges_ignored_after_first(self):
        edges = [(0, 1), (1, 2), (0, 2), (0, 1)]
        assert compute_eta(edges) == 0

    def test_complete_graph_eta_positive(self):
        edges = [(i, j) for i in range(6) for j in range(i + 1, 6)]
        assert compute_eta(edges) > 0


class TestLocalEta:
    def test_book_local_values(self):
        k = 5
        stream = planted_triangles_stream(k, shared_edge=True)
        eta_v = compute_eta_per_node(stream.edges())
        # Nodes 0 and 1 are in every triangle, so every pair counts for them.
        assert eta_v[0] == math.comb(k, 2)
        assert eta_v[1] == math.comb(k, 2)
        # Each apex node is in exactly one triangle -> no pair.
        for apex in range(2, 2 + k):
            assert eta_v[apex] == 0

    def test_nodes_outside_triangles_have_zero(self):
        edges = [(0, 1), (1, 2), (0, 2), (2, 9)]
        eta_v = compute_eta_per_node(edges)
        assert eta_v[9] == 0

    def test_pair_counts_triangle_count_matches(self, medium_stream):
        counts = compute_pair_counts(medium_stream.edges(), want_local=False)
        from repro.graph.triangles import count_triangles

        assert counts.triangle_count == count_triangles(medium_stream.to_graph())

    def test_local_skipped_when_not_requested(self):
        counts = compute_pair_counts([(0, 1), (1, 2), (0, 2)], want_local=False)
        assert counts.eta_per_node == {}

    def test_global_eta_consistent_with_local_structure(self, medium_stream):
        """η_v sums over-count pairs in a structured way; each is >= 0 and
        the global η is positive exactly when some node has a positive η_v."""
        edges = medium_stream.edges()
        counts = compute_pair_counts(edges, want_local=True)
        assert all(value >= 0 for value in counts.eta_per_node.values())
        assert (counts.eta > 0) == any(v > 0 for v in counts.eta_per_node.values())
