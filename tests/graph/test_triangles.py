"""Tests for exact triangle counting and clustering coefficients."""

import math

import pytest

from repro.graph.adjacency import AdjacencyGraph
from repro.graph.triangles import (
    count_triangles,
    count_triangles_per_node,
    count_wedges,
    enumerate_triangles,
    global_clustering_coefficient,
    local_clustering_coefficients,
)


def complete_graph(n):
    return AdjacencyGraph([(i, j) for i in range(n) for j in range(i + 1, n)])


class TestGlobalCount:
    def test_empty_graph(self):
        assert count_triangles(AdjacencyGraph()) == 0

    def test_single_triangle(self):
        assert count_triangles(AdjacencyGraph([(0, 1), (1, 2), (0, 2)])) == 1

    def test_path_has_no_triangle(self):
        assert count_triangles(AdjacencyGraph([(0, 1), (1, 2), (2, 3)])) == 0

    @pytest.mark.parametrize("n", [3, 4, 5, 8, 12])
    def test_complete_graph(self, n):
        assert count_triangles(complete_graph(n)) == math.comb(n, 3)

    def test_two_disjoint_triangles(self):
        graph = AdjacencyGraph([(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
        assert count_triangles(graph) == 2

    def test_book_graph(self):
        edges = [(0, 1)] + [(0, 2 + i) for i in range(5)] + [(1, 2 + i) for i in range(5)]
        assert count_triangles(AdjacencyGraph(edges)) == 5


class TestEnumeration:
    def test_each_triangle_listed_once(self):
        graph = complete_graph(6)
        triangles = list(enumerate_triangles(graph))
        assert len(triangles) == math.comb(6, 3)
        assert len({tuple(sorted(t)) for t in triangles}) == len(triangles)

    def test_enumeration_matches_count(self, medium_stream):
        graph = medium_stream.to_graph()
        assert len(list(enumerate_triangles(graph))) == count_triangles(graph)

    def test_string_node_ids(self):
        graph = AdjacencyGraph([("a", "b"), ("b", "c"), ("a", "c")])
        assert count_triangles(graph) == 1


class TestLocalCounts:
    def test_triangle_local_counts(self):
        counts = count_triangles_per_node(AdjacencyGraph([(0, 1), (1, 2), (0, 2)]))
        assert counts == {0: 1, 1: 1, 2: 1}

    def test_every_node_present_even_with_zero(self):
        graph = AdjacencyGraph([(0, 1), (1, 2), (0, 2), (2, 3)])
        counts = count_triangles_per_node(graph)
        assert counts[3] == 0

    @pytest.mark.parametrize("n", [4, 6, 9])
    def test_complete_graph_local(self, n):
        counts = count_triangles_per_node(complete_graph(n))
        expected = math.comb(n - 1, 2)
        assert all(value == expected for value in counts.values())

    def test_local_sum_is_three_times_global(self, medium_stream):
        graph = medium_stream.to_graph()
        counts = count_triangles_per_node(graph)
        assert sum(counts.values()) == 3 * count_triangles(graph)


class TestWedgesAndClustering:
    def test_wedge_count_star(self):
        star = AdjacencyGraph([(0, i) for i in range(1, 6)])
        assert count_wedges(star) == math.comb(5, 2)

    def test_transitivity_of_complete_graph_is_one(self):
        assert global_clustering_coefficient(complete_graph(5)) == pytest.approx(1.0)

    def test_transitivity_of_triangle_free_graph_is_zero(self):
        assert global_clustering_coefficient(AdjacencyGraph([(0, 1), (1, 2)])) == 0.0

    def test_transitivity_of_empty_graph(self):
        assert global_clustering_coefficient(AdjacencyGraph()) == 0.0

    def test_local_clustering_values(self):
        graph = AdjacencyGraph([(0, 1), (1, 2), (0, 2), (2, 3)])
        coefficients = local_clustering_coefficients(graph)
        assert coefficients[0] == pytest.approx(1.0)
        assert coefficients[2] == pytest.approx(1.0 / 3.0)
        assert coefficients[3] == 0.0
