"""Tests for edge-list validation helpers."""

import pytest

from repro.exceptions import StreamFormatError
from repro.graph.validation import edge_list_summary, validate_edge_list


class TestValidateEdgeList:
    def test_valid_list_passes_through(self):
        edges = [(1, 2), (2, 3)]
        assert validate_edge_list(edges) == edges

    def test_self_loop_rejected_by_default(self):
        with pytest.raises(StreamFormatError):
            validate_edge_list([(1, 1)])

    def test_self_loop_allowed_when_opted_in(self):
        assert validate_edge_list([(1, 1)], allow_self_loops=True) == [(1, 1)]

    def test_duplicates_allowed_by_default(self):
        assert len(validate_edge_list([(1, 2), (2, 1)])) == 2

    def test_duplicates_rejected_when_opted_out(self):
        with pytest.raises(StreamFormatError):
            validate_edge_list([(1, 2), (2, 1)], allow_duplicates=False)

    def test_non_pair_record_rejected(self):
        with pytest.raises(StreamFormatError):
            validate_edge_list([(1, 2, 3)])  # type: ignore[list-item]


class TestEdgeListSummary:
    def test_counts(self):
        records, distinct, loops = edge_list_summary([(1, 2), (2, 1), (3, 3), (4, 5)])
        assert records == 4
        assert distinct == 2
        assert loops == 1

    def test_empty(self):
        assert edge_list_summary([]) == (0, 0, 0)
