"""Tests for experiment spec / result containers."""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.spec import ExperimentResult, MethodSpec, SweepSpec


class TestSweepSpec:
    def test_valid(self):
        spec = SweepSpec(axis_name="c", axis_values=[1, 2], datasets=["a"], num_trials=2)
        assert spec.axis_name == "c"

    def test_empty_axis_rejected(self):
        with pytest.raises(ExperimentError):
            SweepSpec(axis_name="c", axis_values=[], datasets=["a"])

    def test_empty_datasets_rejected(self):
        with pytest.raises(ExperimentError):
            SweepSpec(axis_name="c", axis_values=[1], datasets=[])

    def test_invalid_trials_rejected(self):
        with pytest.raises(ExperimentError):
            SweepSpec(axis_name="c", axis_values=[1], datasets=["a"], num_trials=0)


class TestExperimentResult:
    def test_method_series_lookup(self):
        result = ExperimentResult(
            experiment_id="x",
            description="",
            series={"d": {"REPT": [1.0, 2.0]}},
        )
        assert result.method_series("d", "REPT") == [1.0, 2.0]

    def test_missing_series_raises(self):
        result = ExperimentResult(experiment_id="x", description="")
        with pytest.raises(ExperimentError):
            result.method_series("d", "REPT")


class TestMethodSpec:
    def test_factory_called_with_seed(self):
        calls = []
        spec = MethodSpec(name="dummy", factory=lambda seed: calls.append(seed) or object())
        spec.factory(123)
        assert calls == [123]
