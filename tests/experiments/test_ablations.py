"""Tests for the ablation experiments (quick configurations)."""

import pytest

from repro.experiments.ablations import (
    ablation_combination,
    ablation_hash_family,
    ablation_variance,
)


class TestAblationVariance:
    def test_empirical_tracks_prediction(self):
        result = ablation_variance(
            dataset="youtube-sim", m=5, c_values=(5,), num_trials=40, max_edges=1500
        )
        empirical = result.series["youtube-sim"]["empirical"][0]
        predicted = result.series["youtube-sim"]["predicted"][0]
        assert predicted > 0
        # Loose factor-of-3 agreement: 40 trials of a variance estimate.
        assert 0.33 < empirical / predicted < 3.0

    def test_row_structure(self):
        result = ablation_variance(
            dataset="youtube-sim", m=4, c_values=(2, 4), num_trials=10, max_edges=1000
        )
        assert len(result.rows) == 2
        assert result.headers[0] == "c"


class TestAblationCombination:
    def test_combined_not_worse_than_worst_ingredient(self):
        result = ablation_combination(
            dataset="youtube-sim", m=4, c_values=(6,), num_trials=15, max_edges=1500
        )
        combined, complete_only, partial_only = result.rows[0][1:4]
        assert combined <= max(complete_only, partial_only) + 1e-9

    def test_structure(self):
        result = ablation_combination(
            dataset="youtube-sim", m=4, c_values=(6, 10), num_trials=5, max_edges=1000
        )
        assert result.axis_values == [6, 10]


class TestAblationHashFamily:
    def test_both_families_reported(self):
        result = ablation_hash_family(
            dataset="youtube-sim", m=5, c=5, num_trials=10, max_edges=1200
        )
        assert [row[0] for row in result.rows] == ["splitmix", "tabulation"]

    def test_accuracy_comparable_between_families(self):
        result = ablation_hash_family(
            dataset="youtube-sim", m=5, c=5, num_trials=25, max_edges=1500
        )
        nrmse = {row[0]: row[1] for row in result.rows}
        assert nrmse["splitmix"] < 1.0
        assert nrmse["tabulation"] < 1.0
        # Within a factor of ~2.5 of each other on this quick configuration.
        ratio = nrmse["splitmix"] / nrmse["tabulation"]
        assert 0.4 < ratio < 2.5
