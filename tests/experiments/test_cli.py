"""Tests for the rept-experiment command-line interface."""

import pytest

from repro.experiments.cli import main


class TestCli:
    def test_table2_runs_and_prints(self, capsys):
        exit_code = main(["table2", "--datasets", "youtube-sim", "--max-edges", "800"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "youtube-sim" in captured.out

    def test_figure1_runs(self, capsys):
        exit_code = main(["figure1", "--datasets", "youtube-sim", "--max-edges", "800"])
        assert exit_code == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_figure4_with_overrides(self, capsys):
        exit_code = main(
            [
                "figure4",
                "--datasets", "youtube-sim",
                "--trials", "2",
                "--max-edges", "800",
                "--c-values", "2", "4",
                "--seed", "1",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "REPT" in captured.out

    def test_backends_artefact_runs(self, capsys):
        exit_code = main(
            [
                "backends",
                "--datasets", "youtube-sim",
                "--max-edges", "600",
                "--backends", "serial", "chunked-serial",
                "--chunk-size", "200",
                "--seed", "3",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "chunked-serial" in captured.out
        assert "yes" in captured.out

    def test_ablation_entry_point(self, capsys):
        exit_code = main(["ablation-hash", "--datasets", "youtube-sim", "--trials", "5"])
        assert exit_code == 0
        assert "splitmix" in capsys.readouterr().out

    def test_monitor_artefact_runs(self, capsys):
        exit_code = main(
            [
                "monitor",
                "--window", "120",
                "--slide", "60",
                "--panes", "4",
                "--duration", "600",
                "--seed", "5",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Windowed triangle monitoring" in captured.out
        assert "rept_err%" in captured.out

    def test_unknown_artefact_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure99"])
