"""Tests for the trial runner and default method line-up."""

import math

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.runner import (
    default_method_specs,
    run_global_trials,
    run_local_trials,
    run_trials,
)
from repro.graph.statistics import compute_statistics


class TestDefaultMethodSpecs:
    def test_standard_lineup_names(self):
        specs = default_method_specs(0.5, 2, 100)
        assert [spec.name for spec in specs] == ["REPT", "MASCOT", "TRIEST", "GPS"]

    def test_single_threaded_lineup(self):
        specs = default_method_specs(0.5, 2, 100, methods=("mascot-s", "triest-s", "gps-s"))
        assert [spec.name for spec in specs] == ["MASCOT-S", "TRIEST-S", "GPS-S"]

    def test_invalid_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            default_method_specs(0.3, 2, 100)  # not 1/m

    def test_rept_backend_produces_identical_trials(self, clique_stream):
        edges = clique_stream.edges()
        in_process = default_method_specs(0.5, 2, len(edges), methods=("rept",))[0]
        driven = default_method_specs(
            0.5, 2, len(edges), methods=("rept",), rept_backend="chunked-serial"
        )[0]
        a = [e.global_count for e in run_trials(in_process, edges, 3, seed=9)]
        b = [e.global_count for e in run_trials(driven, edges, 3, seed=9)]
        assert a == b

    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigurationError):
            default_method_specs(0.5, 2, 100, methods=("magic",))

    def test_factories_produce_runnable_estimators(self, clique_stream):
        specs = default_method_specs(0.5, 2, len(clique_stream), track_local=True)
        for spec in specs:
            estimate = spec.factory(1).run(clique_stream)
            assert estimate.global_count >= 0


class TestRunTrials:
    def test_number_of_trials(self, clique_stream):
        spec = default_method_specs(0.5, 2, len(clique_stream))[0]
        estimates = run_trials(spec, clique_stream.edges(), num_trials=4, seed=1)
        assert len(estimates) == 4

    def test_zero_trials_rejected(self, clique_stream):
        spec = default_method_specs(0.5, 2, len(clique_stream))[0]
        with pytest.raises(ConfigurationError):
            run_trials(spec, clique_stream.edges(), num_trials=0)

    def test_trials_are_deterministic_given_seed(self, clique_stream):
        spec = default_method_specs(0.5, 2, len(clique_stream))[0]
        a = [e.global_count for e in run_trials(spec, clique_stream.edges(), 3, seed=9)]
        b = [e.global_count for e in run_trials(spec, clique_stream.edges(), 3, seed=9)]
        assert a == b

    def test_trials_vary_across_seeds(self, clique_stream):
        spec = default_method_specs(0.25, 2, len(clique_stream))[1]  # MASCOT
        a = [e.global_count for e in run_trials(spec, clique_stream.edges(), 3, seed=1)]
        b = [e.global_count for e in run_trials(spec, clique_stream.edges(), 3, seed=2)]
        assert a != b


class TestSummaries:
    def test_global_summaries_cover_all_methods(self, clique_stream):
        specs = default_method_specs(0.5, 2, len(clique_stream))
        truth = float(math.comb(12, 3))
        summaries = run_global_trials(specs, clique_stream.edges(), truth, num_trials=3, seed=1)
        assert set(summaries) == {"REPT", "MASCOT", "TRIEST", "GPS"}
        for summary in summaries.values():
            assert summary.num_trials == 3
            assert summary.nrmse >= 0

    def test_local_summaries(self, clique_stream):
        specs = default_method_specs(0.5, 2, len(clique_stream), methods=("rept", "mascot"), track_local=True)
        stats = compute_statistics(clique_stream.edges())
        truth_local = {node: float(v) for node, v in stats.local_triangles.items()}
        summaries = run_local_trials(specs, clique_stream.edges(), truth_local, num_trials=2, seed=1)
        assert set(summaries) == {"REPT", "MASCOT"}
        for summary in summaries.values():
            assert summary.num_nodes == 12
