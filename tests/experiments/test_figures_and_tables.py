"""Smoke + shape tests for the figure/table reproduction functions.

These use heavily reduced settings (small streams, few trials, short axes)
so the full experiment harness stays exercised by CI without taking the
minutes-long defaults.  The benchmark harness runs larger configurations.
"""

import pytest

from repro.experiments.figures import figure1, figure3, figure4, figure5, figure7, figure8
from repro.experiments.tables import table2

QUICK = {"datasets": ["youtube-sim"], "max_edges": 1500}


class TestFigure1:
    def test_rows_and_series(self):
        result = figure1(datasets=["youtube-sim", "web-google-sim"], max_edges=1500)
        assert result.experiment_id == "figure1"
        assert len(result.rows) == 2
        assert "youtube-sim" in result.series
        assert "tau_term" in result.series["youtube-sim"]
        assert "Figure 1" in result.text

    def test_covariance_term_positive(self):
        result = figure1(datasets=["flickr-sim"], max_edges=2000)
        cov_terms = result.series["flickr-sim"]["cov_term"]
        assert all(value > 0 for value in cov_terms)


class TestAccuracyFigures:
    def test_figure3_shape(self):
        result = figure3(datasets=["youtube-sim"], c_values=(100, 200), num_trials=2, max_edges=1200)
        assert result.axis_values == [100, 200]
        series = result.series["youtube-sim"]
        assert set(series) == {"REPT", "MASCOT", "TRIEST", "GPS"}
        assert all(len(values) == 2 for values in series.values())

    def test_figure4_shape(self):
        result = figure4(datasets=["youtube-sim"], c_values=(2, 10), num_trials=2, max_edges=1200)
        assert set(result.series["youtube-sim"]) == {"REPT", "MASCOT", "TRIEST", "GPS"}

    def test_figure5_local_errors(self):
        result = figure5(datasets=["youtube-sim"], c_values=(100,), num_trials=2, max_edges=1000)
        series = result.series["youtube-sim"]
        assert set(series) == {"REPT", "MASCOT", "TRIEST"}
        assert all(value >= 0 for values in series.values() for value in values)

    def test_rept_no_worse_than_mascot_on_average(self):
        """On the quick configuration REPT should not lose to parallel MASCOT."""
        result = figure4(datasets=["flickr-sim"], c_values=(10,), num_trials=4, max_edges=2500,
                         methods=("mascot", "rept"))
        series = result.series["flickr-sim"]
        assert series["REPT"][0] <= series["MASCOT"][0] * 1.5


class TestRuntimeFigures:
    def test_figure7_structure(self):
        result = figure7(datasets=["youtube-sim"], inv_p_values=(2, 4), c=3, max_edges=800)
        series = result.series["youtube-sim"]
        assert set(series) == {"REPT", "MASCOT", "TRIEST", "GPS"}
        assert all(len(values) == 2 for values in series.values())
        assert all(value >= 0 for values in series.values() for value in values)

    def test_figure8_structure(self):
        result = figure8(dataset="youtube-sim", c_values=(2, 4), inv_p=5, num_trials=2, max_edges=1000)
        assert set(result.series) == {"runtime", "nrmse"}
        assert set(result.series["nrmse"]) == {"MASCOT-S", "TRIEST-S", "GPS-S", "REPT"}


class TestTable2:
    def test_all_datasets_by_default_structure(self):
        result = table2(datasets=["youtube-sim", "flickr-sim"], max_edges=1500)
        assert len(result.rows) == 2
        assert result.headers[0] == "dataset"
        assert "Table II" in result.text

    def test_paper_values_included(self):
        result = table2(datasets=["youtube-sim"], max_edges=800)
        row = result.rows[0]
        assert row[5] == "YouTube"
        assert row[6] == 1_138_499
