"""Tests for ResultStore validation and quarantine of damaged cache records."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.results import ResultStore, _STORE_VERSION
from repro.testing.faults import corrupt_file, truncate_file

FP = "ab" + "0" * 62


@pytest.fixture
def store(tmp_path):
    store = ResultStore(tmp_path / "store")
    store.save(FP, "stage/task", "kind", {"value": 1})
    return store


class TestVerify:
    def test_valid_record_verifies(self, store):
        assert store.verify(FP)
        assert store.has(FP)

    def test_missing_record_is_a_plain_miss(self, store):
        assert not store.verify("cd" + "1" * 62)

    def test_torn_json_is_quarantined(self, store):
        path = store.path_for(FP)
        truncate_file(path, path.stat().st_size // 2)
        assert not store.verify(FP)
        assert not store.has(FP)
        assert path.with_name(path.name + ".corrupt").is_file()

    def test_bitrot_fingerprint_mismatch_is_quarantined(self, store):
        path = store.path_for(FP)
        record = json.loads(path.read_text())
        record["fingerprint"] = "f" * 64
        path.write_text(json.dumps(record))
        assert not store.verify(FP)
        assert path.with_name(path.name + ".corrupt").is_file()

    def test_missing_payload_key_is_quarantined(self, store):
        path = store.path_for(FP)
        path.write_text(json.dumps({"fingerprint": FP}))
        assert not store.verify(FP)
        assert path.with_name(path.name + ".corrupt").is_file()

    def test_foreign_store_version_is_a_miss_but_not_quarantined(self, store):
        path = store.path_for(FP)
        record = json.loads(path.read_text())
        record["store_version"] = _STORE_VERSION + 1
        path.write_text(json.dumps(record))
        assert not store.verify(FP)
        assert path.is_file()  # untouched: an older build may still read it
        assert not path.with_name(path.name + ".corrupt").exists()

    def test_recompute_after_quarantine_round_trips(self, store):
        path = store.path_for(FP)
        corrupt_file(path, seed=1, num_bytes=16)
        if store.verify(FP):  # corruption may land only in whitespace
            pytest.skip("corruption did not damage the record")
        store.save(FP, "stage/task", "kind", {"value": 2})
        assert store.verify(FP)
        assert store.load(FP) == {"value": 2}
        # the damaged bytes are preserved for post-mortem inspection
        assert path.with_name(path.name + ".corrupt").is_file()


class TestLoad:
    def test_load_quarantines_torn_json(self, store):
        path = store.path_for(FP)
        truncate_file(path, 10)
        with pytest.raises(ExperimentError, match="quarantined"):
            store.load(FP)
        assert path.with_name(path.name + ".corrupt").is_file()
        with pytest.raises(ExperimentError, match="no record"):
            store.load(FP)

    def test_load_quarantines_fingerprint_mismatch(self, store):
        path = store.path_for(FP)
        record = json.loads(path.read_text())
        record["fingerprint"] = "f" * 64
        path.write_text(json.dumps(record))
        with pytest.raises(ExperimentError, match="quarantined"):
            store.load(FP)
        assert path.with_name(path.name + ".corrupt").is_file()

    def test_load_reports_foreign_version_without_quarantine(self, store):
        path = store.path_for(FP)
        record = json.loads(path.read_text())
        record["store_version"] = _STORE_VERSION + 1
        path.write_text(json.dumps(record))
        with pytest.raises(ExperimentError, match="store version"):
            store.load(FP)
        assert path.is_file()
