"""Tests for result persistence/comparison and the prediction experiment."""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.predictions import prediction_vs_measurement
from repro.experiments.results import compare_results, load_result, save_result
from repro.experiments.spec import ExperimentResult


def _result(experiment_id="figure4", values=(0.5, 0.25)):
    return ExperimentResult(
        experiment_id=experiment_id,
        description="demo",
        axis_name="c",
        axis_values=[2, 4],
        series={"ds": {"REPT": list(values), "MASCOT": [1.0, 0.5]}},
        rows=[[2, 0.5], [4, 0.25]],
        headers=["c", "nrmse"],
        text="demo table",
        metadata={"p": 0.1},
    )


class TestPersistence:
    def test_round_trip(self, tmp_path):
        original = _result()
        path = save_result(original, tmp_path / "result.json")
        loaded = load_result(path)
        assert loaded.experiment_id == original.experiment_id
        assert loaded.series == original.series
        assert loaded.axis_values == original.axis_values
        assert loaded.metadata["p"] == 0.1

    def test_save_creates_parent_directories(self, tmp_path):
        path = save_result(_result(), tmp_path / "nested" / "deep" / "r.json")
        assert path.exists()

    def test_load_rejects_non_result_json(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ExperimentError):
            load_result(path)

    def test_load_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text('{"format_version": 99, "result": {"experiment_id": "x"}}')
        with pytest.raises(ExperimentError):
            load_result(path)


class TestComparison:
    def test_ratios(self):
        baseline = _result(values=(0.5, 0.25))
        candidate = _result(values=(0.25, 0.25))
        ratios = compare_results(baseline, candidate)
        assert ratios["ds"]["REPT"] == [0.5, 1.0]

    def test_mismatched_experiments_rejected(self):
        with pytest.raises(ExperimentError):
            compare_results(_result("figure3"), _result("figure4"))

    def test_mismatched_axes_rejected(self):
        baseline = _result()
        candidate = _result()
        candidate.axis_values = [2, 8]
        with pytest.raises(ExperimentError):
            compare_results(baseline, candidate)

    def test_missing_cells_skipped(self):
        baseline = _result()
        candidate = _result()
        del candidate.series["ds"]["MASCOT"]
        ratios = compare_results(baseline, candidate)
        assert "MASCOT" not in ratios["ds"]


class TestPredictionExperiment:
    def test_structure_and_agreement(self):
        result = prediction_vs_measurement(
            dataset="youtube-sim", m=5, c_values=(5,), num_trials=25, max_edges=1500
        )
        assert result.axis_values == [5]
        series = result.series["youtube-sim"]
        measured = series["REPT measured"][0]
        predicted = series["REPT predicted"][0]
        assert predicted > 0
        # Measured NRMSE over 25 trials should land within a factor ~2 of the
        # closed-form prediction (the estimator is unbiased, so the NRMSE is
        # essentially the standard deviation ratio).
        assert 0.5 < measured / predicted < 2.0

    def test_prediction_orders_methods(self):
        result = prediction_vs_measurement(
            dataset="youtube-sim", m=4, c_values=(4,), num_trials=5, max_edges=1200
        )
        series = result.series["youtube-sim"]
        assert series["REPT predicted"][0] <= series["MASCOT predicted"][0]

    def test_text_mentions_dataset(self):
        result = prediction_vs_measurement(
            dataset="youtube-sim", m=4, c_values=(2,), num_trials=3, max_edges=1000
        )
        assert "youtube-sim" in result.text
