"""Tests for campaign task retries and the ``campaign-task`` fault site."""

from __future__ import annotations

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.campaign import campaign_spec_from_mapping, run_campaign
from repro.experiments.spec import CampaignSpec, StageSpec
from repro.testing.faults import FaultPlan, FaultSpec, arm

DATASET = "youtube-sim"


def _mapping(task_retries=0, workers=1):
    return {
        "campaign": {
            "name": "retry-unit",
            "workers": workers,
            "task_retries": task_retries,
        },
        "defaults": {"max_edges": 800, "num_trials": 2, "datasets": [DATASET]},
        "stages": {
            "prep": {"kind": "dataset-stats"},
            "figure4": {
                "kind": "accuracy-figure",
                "depends_on": ["prep"],
                "c_values": [2],
            },
        },
    }


def _statuses(report):
    return {task.task_id: task.status for task in report.tasks}


class TestSpecField:
    def test_loader_parses_task_retries(self):
        spec = campaign_spec_from_mapping(_mapping(task_retries=2))
        assert spec.task_retries == 2

    def test_default_is_fail_fast(self):
        spec = campaign_spec_from_mapping(_mapping())
        assert spec.task_retries == 0

    def test_negative_task_retries_rejected(self):
        with pytest.raises(ExperimentError, match="task_retries"):
            CampaignSpec(
                name="bad",
                stages=(StageSpec(name="s", kind="dataset-stats"),),
                task_retries=-1,
            )

    def test_non_integer_task_retries_rejected(self):
        mapping = _mapping()
        mapping["campaign"]["task_retries"] = "two"
        with pytest.raises(ExperimentError, match="task_retries"):
            campaign_spec_from_mapping(mapping)


class TestSerialRetries:
    def test_transient_fault_is_retried_to_success(self, tmp_path):
        spec = campaign_spec_from_mapping(_mapping(task_retries=2))
        plan = FaultPlan(
            faults=(FaultSpec(site="campaign-task", match={"task": "prep/youtube-sim"}),)
        )
        with arm(plan):
            report = run_campaign(spec, tmp_path / "store")
        assert all(status == "computed" for status in _statuses(report).values())

    def test_fail_fast_without_retries(self, tmp_path):
        spec = campaign_spec_from_mapping(_mapping(task_retries=0))
        plan = FaultPlan(
            faults=(FaultSpec(site="campaign-task", match={"task": "prep/youtube-sim"}),)
        )
        with arm(plan):
            with pytest.raises(ExperimentError, match="prep/youtube-sim"):
                run_campaign(spec, tmp_path / "store")

    def test_persistent_fault_exhausts_the_budget(self, tmp_path):
        spec = campaign_spec_from_mapping(_mapping(task_retries=2))
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    site="campaign-task",
                    match={"task": "prep/youtube-sim"},
                    times=100,
                ),
            )
        )
        with arm(plan):
            with pytest.raises(ExperimentError, match="prep/youtube-sim"):
                run_campaign(spec, tmp_path / "store")

    def test_experiment_error_is_never_retried(self, tmp_path, monkeypatch):
        from repro.experiments.campaign import engine as engine_module

        calls = []
        real_execute = engine_module._execute_task

        def deterministic_failure(kind_name, config, inputs):
            if kind_name == "dataset-stats":
                calls.append(1)
                raise ExperimentError("bad config")
            return real_execute(kind_name, config, inputs)

        monkeypatch.setattr(engine_module, "_execute_task", deterministic_failure)
        spec = campaign_spec_from_mapping(_mapping(task_retries=5))
        with pytest.raises(ExperimentError, match="bad config"):
            run_campaign(spec, tmp_path / "store")
        assert len(calls) == 1

    def test_resume_after_exhausted_retries(self, tmp_path):
        """Retries exhausted on a later task: earlier results stay cached."""
        spec = campaign_spec_from_mapping(_mapping(task_retries=1))
        store = tmp_path / "store"
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    site="campaign-task",
                    match={"task": "figure4"},
                    times=100,
                ),
            )
        )
        with arm(plan):
            with pytest.raises(ExperimentError):
                run_campaign(spec, store)
        report = run_campaign(spec, store)
        statuses = _statuses(report)
        assert statuses["prep/youtube-sim"] == "cached"
        assert statuses["figure4"] == "computed"


class TestParallelRetries:
    def test_transient_fault_is_retried_under_workers(self, tmp_path):
        spec = campaign_spec_from_mapping(_mapping(task_retries=2, workers=2))
        plan = FaultPlan(
            faults=(FaultSpec(site="campaign-task", match={"task": "prep/youtube-sim"}),)
        )
        with arm(plan):
            report = run_campaign(spec, tmp_path / "store")
        assert all(status == "computed" for status in _statuses(report).values())

    def test_worker_death_is_retried_under_workers(self, tmp_path):
        spec = campaign_spec_from_mapping(_mapping(task_retries=1, workers=2))
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    site="campaign-task",
                    match={"task": "prep/youtube-sim"},
                    action="exit",
                ),
            )
        )
        with arm(plan):
            report = run_campaign(spec, tmp_path / "store")
        assert all(status == "computed" for status in _statuses(report).values())
