"""Campaign layer tests: specs, planning, fingerprints, cache correctness.

The cache-correctness tests are the heart of the campaign contract:

* identical spec ⇒ a second run is 100% cache hits with byte-identical
  stored records and outputs;
* changing a config field or an upstream task invalidates exactly the
  downstream cone — siblings stay cached;
* a run killed mid-campaign resumes without recomputing completed tasks;
* worker-pool execution is byte-identical to serial execution;
* a campaign figure equals the direct figure function call.
"""

import json

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.campaign import (
    CODE_TAG,
    campaign_spec_from_mapping,
    load_campaign_spec,
    plan_campaign,
    run_campaign,
    task_fingerprint,
)
from repro.experiments.campaign import engine as engine_module
from repro.experiments.campaign.engine import STATUS_CACHED, STATUS_COMPUTED, STATUS_STALE
from repro.experiments.figures import figure4
from repro.experiments.results import ResultStore, encode_result
from repro.experiments.spec import CampaignSpec, StageSpec

DATASET = "youtube-sim"
MAX_EDGES = 800


def _smoke_mapping(num_trials=2, c_values=(2, 4), max_edges=MAX_EDGES):
    return {
        "campaign": {"name": "unit", "description": "unit-test campaign"},
        "defaults": {
            "max_edges": max_edges,
            "num_trials": num_trials,
            "datasets": [DATASET],
        },
        "stages": {
            "prep": {"kind": "dataset-stats"},
            "figure4": {
                "kind": "accuracy-figure",
                "depends_on": ["prep"],
                "c_values": list(c_values),
            },
            "table2": {
                "kind": "artefact",
                "artefact": "table2",
                "depends_on": ["prep"],
                "params": {"datasets": [DATASET], "max_edges": max_edges},
            },
            "report": {
                "kind": "report",
                "depends_on": ["figure4", "table2"],
                "title": "unit report",
            },
        },
    }


def _statuses(report):
    return {task.task_id: task.status for task in report.tasks}


class TestSpecValidation:
    def test_mapping_round_trip(self):
        spec = campaign_spec_from_mapping(_smoke_mapping())
        assert spec.name == "unit"
        assert spec.stage_names() == ["prep", "figure4", "table2", "report"]
        assert spec.stage("figure4").depends_on == ("prep",)

    def test_shipped_specs_load_and_plan(self):
        for path in ("campaigns/smoke.toml", "campaigns/paper_full.toml"):
            spec = load_campaign_spec(path)
            graph = plan_campaign(spec)
            assert len(graph.tasks) > 3

    def test_duplicate_stage_rejected(self):
        with pytest.raises(ExperimentError):
            CampaignSpec(
                name="dup",
                stages=(
                    StageSpec(name="a", kind="report"),
                    StageSpec(name="a", kind="report"),
                ),
            )

    def test_unknown_dependency_rejected(self):
        with pytest.raises(ExperimentError, match="unknown stage"):
            CampaignSpec(
                name="x",
                stages=(StageSpec(name="a", kind="report", depends_on=("ghost",)),),
            )

    def test_self_dependency_rejected(self):
        with pytest.raises(ExperimentError, match="depends on itself"):
            StageSpec(name="a", kind="report", depends_on=("a",))

    def test_cycle_rejected(self):
        spec = CampaignSpec(
            name="cyc",
            stages=(
                StageSpec(name="a", kind="report", depends_on=("b",)),
                StageSpec(name="b", kind="report", depends_on=("a",)),
            ),
        )
        with pytest.raises(ExperimentError, match="cycle"):
            plan_campaign(spec)

    def test_unknown_kind_rejected_at_plan_time(self):
        spec = CampaignSpec(
            name="x", stages=(StageSpec(name="a", kind="no-such-kind"),)
        )
        with pytest.raises(ExperimentError, match="unknown kind"):
            plan_campaign(spec)

    def test_unknown_config_key_rejected(self):
        mapping = _smoke_mapping()
        mapping["stages"]["figure4"]["typo_key"] = 1
        with pytest.raises(ExperimentError, match="typo_key"):
            plan_campaign(campaign_spec_from_mapping(mapping))

    def test_unknown_artefact_rejected(self):
        mapping = _smoke_mapping()
        mapping["stages"]["table2"]["artefact"] = "figure99"
        with pytest.raises(ExperimentError, match="figure99"):
            plan_campaign(campaign_spec_from_mapping(mapping))

    def test_sweep_dataset_not_prepared_rejected(self):
        mapping = _smoke_mapping()
        mapping["stages"]["figure4"]["datasets"] = ["flickr-sim"]
        with pytest.raises(ExperimentError, match="does not prepare"):
            plan_campaign(campaign_spec_from_mapping(mapping))

    def test_unknown_top_level_section_rejected(self):
        mapping = _smoke_mapping()
        mapping["bogus"] = {}
        with pytest.raises(ExperimentError, match="bogus"):
            campaign_spec_from_mapping(mapping)


class TestFingerprints:
    def test_deterministic(self):
        fp1 = task_fingerprint("artefact", 1, {"a": 1, "b": [2, 3]}, {"up": "ff"})
        fp2 = task_fingerprint("artefact", 1, {"b": [2, 3], "a": 1}, {"up": "ff"})
        assert fp1 == fp2  # key order never matters

    def test_sensitive_to_every_component(self):
        base = task_fingerprint("artefact", 1, {"a": 1}, {"up": "ff"})
        assert task_fingerprint("report", 1, {"a": 1}, {"up": "ff"}) != base
        assert task_fingerprint("artefact", 2, {"a": 1}, {"up": "ff"}) != base
        assert task_fingerprint("artefact", 1, {"a": 2}, {"up": "ff"}) != base
        assert task_fingerprint("artefact", 1, {"a": 1}, {"up": "00"}) != base

    def test_code_tag_embedded(self):
        # v2: estimate metadata gained the resolved-kernel label, which
        # flows into cached artefact payloads.
        assert "campaign-v2" in CODE_TAG


class TestPlanner:
    def test_sweep_expansion(self):
        graph = plan_campaign(campaign_spec_from_mapping(_smoke_mapping()))
        ids = graph.topological_ids()
        assert f"prep/{DATASET}" in ids
        assert f"figure4/{DATASET}/c2" in ids
        assert f"figure4/{DATASET}/c4" in ids
        assert ids.index(f"figure4/{DATASET}/c2") < ids.index("figure4")
        cell = graph.tasks[f"figure4/{DATASET}/c2"]
        assert cell.deps == (f"prep/{DATASET}",)
        aggregate = graph.tasks["figure4"]
        assert f"figure4/{DATASET}/c4" in aggregate.deps
        assert graph.terminals["figure4"] == ["figure4"]

    def test_report_sections_follow_declaration_order(self):
        graph = plan_campaign(campaign_spec_from_mapping(_smoke_mapping()))
        assert graph.tasks["report"].config["sections"] == ["figure4", "table2"]


class TestCacheCorrectness:
    def test_second_run_is_all_hits_and_byte_identical(self, tmp_path):
        spec = campaign_spec_from_mapping(_smoke_mapping())
        store = tmp_path / "store"
        out = tmp_path / "out"
        first = run_campaign(spec, store=store, out_dir=out)
        assert all(status == STATUS_COMPUTED for status in _statuses(first).values())
        snapshot = {
            path: path.read_bytes() for path in sorted(store.rglob("*.json"))
        }
        second = run_campaign(spec, store=store, out_dir=out)
        assert all(status == STATUS_CACHED for status in _statuses(second).values())
        assert second.num_computed == 0
        for path, blob in snapshot.items():
            assert path.read_bytes() == blob

    def test_fresh_store_reproduces_byte_identical_records(self, tmp_path):
        spec = campaign_spec_from_mapping(_smoke_mapping())
        run_campaign(spec, store=tmp_path / "a", out_dir=tmp_path / "outa")
        run_campaign(spec, store=tmp_path / "b", out_dir=tmp_path / "outb")
        blobs_a = sorted(p.relative_to(tmp_path / "a") for p in (tmp_path / "a").rglob("*.json"))
        blobs_b = sorted(p.relative_to(tmp_path / "b") for p in (tmp_path / "b").rglob("*.json"))
        assert blobs_a == blobs_b
        for rel in blobs_a:
            assert (tmp_path / "a" / rel).read_bytes() == (tmp_path / "b" / rel).read_bytes()

    def test_config_change_invalidates_exactly_the_downstream_cone(self, tmp_path):
        store = tmp_path / "store"
        run_campaign(campaign_spec_from_mapping(_smoke_mapping()), store=store)
        # Changing the sweep's trial count must recompute its cells, its
        # aggregate, and the report — but not dataset prep or table2.
        changed = campaign_spec_from_mapping(_smoke_mapping(num_trials=3))
        statuses = _statuses(run_campaign(changed, store=store))
        assert statuses[f"prep/{DATASET}"] == STATUS_CACHED
        assert statuses["table2"] == STATUS_CACHED
        assert statuses[f"figure4/{DATASET}/c2"] == STATUS_COMPUTED
        assert statuses[f"figure4/{DATASET}/c4"] == STATUS_COMPUTED
        assert statuses["figure4"] == STATUS_COMPUTED
        assert statuses["report"] == STATUS_COMPUTED

    def test_new_axis_value_reuses_existing_cells(self, tmp_path):
        store = tmp_path / "store"
        run_campaign(campaign_spec_from_mapping(_smoke_mapping()), store=store)
        grown = campaign_spec_from_mapping(_smoke_mapping(c_values=(2, 4, 8)))
        statuses = _statuses(run_campaign(grown, store=store))
        assert statuses[f"figure4/{DATASET}/c2"] == STATUS_CACHED
        assert statuses[f"figure4/{DATASET}/c4"] == STATUS_CACHED
        assert statuses[f"figure4/{DATASET}/c8"] == STATUS_COMPUTED
        assert statuses["figure4"] == STATUS_COMPUTED

    def test_upstream_change_propagates_through_cells(self, tmp_path):
        store = tmp_path / "store"
        run_campaign(campaign_spec_from_mapping(_smoke_mapping()), store=store)
        # Changing dataset preparation (max_edges) rewrites the prep task's
        # fingerprint; every cell hangs off it, so the whole cone reruns.
        changed = campaign_spec_from_mapping(_smoke_mapping(max_edges=900))
        statuses = _statuses(run_campaign(changed, store=store))
        assert all(status == STATUS_COMPUTED for status in statuses.values())

    def test_killed_campaign_resumes_from_last_completed_task(self, tmp_path, monkeypatch):
        spec = campaign_spec_from_mapping(_smoke_mapping())
        store = tmp_path / "store"
        real_execute = engine_module._execute_task

        def exploding_execute(kind_name, config, inputs):
            if kind_name == "artefact":
                raise RuntimeError("simulated crash")
            return real_execute(kind_name, config, inputs)

        monkeypatch.setattr(engine_module, "_execute_task", exploding_execute)
        with pytest.raises(ExperimentError, match="table2"):
            run_campaign(spec, store=store)
        monkeypatch.setattr(engine_module, "_execute_task", real_execute)

        statuses = _statuses(run_campaign(spec, store=store))
        # Everything that completed before the crash is served from cache.
        assert statuses[f"prep/{DATASET}"] == STATUS_CACHED
        assert statuses[f"figure4/{DATASET}/c2"] == STATUS_CACHED
        assert statuses[f"figure4/{DATASET}/c4"] == STATUS_CACHED
        assert statuses["figure4"] == STATUS_CACHED
        assert statuses["table2"] == STATUS_COMPUTED
        assert statuses["report"] == STATUS_COMPUTED

    def test_force_recomputes_everything(self, tmp_path):
        spec = campaign_spec_from_mapping(_smoke_mapping())
        store = tmp_path / "store"
        run_campaign(spec, store=store)
        forced = run_campaign(spec, store=store, force=True)
        assert all(status == STATUS_COMPUTED for status in _statuses(forced).values())

    def test_dry_run_reports_without_executing(self, tmp_path):
        spec = campaign_spec_from_mapping(_smoke_mapping())
        store = tmp_path / "store"
        dry = run_campaign(spec, store=store, dry_run=True)
        assert all(status == STATUS_STALE for status in _statuses(dry).values())
        assert ResultStore(store).fingerprints() == []


class TestEquivalenceAndParallelism:
    def test_campaign_figure_equals_direct_call(self, tmp_path):
        spec = campaign_spec_from_mapping(_smoke_mapping())
        out = tmp_path / "out"
        run_campaign(spec, store=tmp_path / "store", out_dir=out)
        payload = json.loads((out / "figure4.json").read_text())["payload"]
        direct = encode_result(
            figure4(
                datasets=[DATASET], c_values=(2, 4), num_trials=2, max_edges=MAX_EDGES
            )
        )
        assert payload == direct

    def test_worker_pool_is_byte_identical_to_serial(self, tmp_path):
        spec = campaign_spec_from_mapping(_smoke_mapping())
        run_campaign(spec, store=tmp_path / "serial", out_dir=tmp_path / "outs")
        parallel = run_campaign(
            spec, store=tmp_path / "parallel", out_dir=tmp_path / "outp", workers=2
        )
        assert parallel.num_computed == len(parallel.tasks)
        for rel in sorted(p.relative_to(tmp_path / "serial")
                          for p in (tmp_path / "serial").rglob("*.json")):
            assert (tmp_path / "serial" / rel).read_bytes() == (
                tmp_path / "parallel" / rel
            ).read_bytes()

    def test_parallel_failure_still_persists_completed_tasks(self, tmp_path):
        mapping = _smoke_mapping()
        mapping["stages"]["table2"]["artefact"] = "table2"
        mapping["stages"]["table2"]["params"] = {"datasets": ["no-such-dataset"]}
        spec = campaign_spec_from_mapping(mapping)
        store = tmp_path / "store"
        with pytest.raises(ExperimentError, match="table2"):
            run_campaign(spec, store=store, workers=2)
        # In-flight sweep cells were drained and persisted before the run
        # raised; resume serves them from cache.  (Whether the aggregate got
        # scheduled before the failure is a scheduler race, so only the
        # cells are guaranteed.)
        fixed = campaign_spec_from_mapping(_smoke_mapping())
        statuses = _statuses(run_campaign(fixed, store=store, workers=2))
        assert statuses[f"figure4/{DATASET}/c2"] == STATUS_CACHED
        assert statuses[f"figure4/{DATASET}/c4"] == STATUS_CACHED


class TestReportAndOutputs:
    def test_outputs_and_manifest(self, tmp_path):
        spec = campaign_spec_from_mapping(_smoke_mapping())
        out = tmp_path / "out"
        report = run_campaign(spec, store=tmp_path / "store", out_dir=out)
        assert (out / "report.txt").exists()
        assert (out / "figure4.txt").exists()
        manifest = json.loads((out / "manifest.json").read_text())
        assert manifest["campaign"] == "unit"
        assert manifest["code_tag"] == CODE_TAG
        assert {t["task_id"] for t in manifest["tasks"]} == {
            t.task_id for t in report.tasks
        }
        report_text = (out / "report.txt").read_text()
        assert "figure4" in report_text and "Table II" in report_text

    def test_explain_text_lists_every_task(self, tmp_path):
        spec = campaign_spec_from_mapping(_smoke_mapping())
        report = run_campaign(spec, store=tmp_path / "store")
        text = report.explain_text()
        for task in report.tasks:
            assert task.task_id in text
        assert "0 cached" in text
